//! JSON benchmark emitter: the machine-readable companion to the
//! criterion-style console benches in `benches/`.
//!
//! The bench targets print human-oriented lines; CI and the paper's
//! efficiency discussion (Table 4, Figure 7, §4.4) want numbers a script
//! can diff. This module re-runs the same scoping / matching / scaling /
//! ann / solver workloads under a configurable [`MeasureConfig`] and
//! serializes one document — `BENCH_6.json` — via the workspace's
//! hermetic [`cs_core::json`] writer.
//!
//! Two calibration profiles exist:
//!
//! - [`Mode::Full`] mirrors the bench targets (5 ms samples, real OC3 /
//!   OC3-FO datasets) and produces the checked-in baseline,
//! - [`Mode::Smoke`] shrinks datasets and sample budgets so the whole
//!   emitter finishes in well under five seconds even in a debug build —
//!   that is what `scripts/verify.sh` and the unit tests run.
//!
//! Timing uses a [`MonotoneTimer`] (readings can never go backwards) and
//! per-sample statistics include a symmetric trimmed mean
//! ([`trimmed_mean_ns`]) so a single scheduler hiccup cannot drag the
//! headline number.

use std::time::{Duration, Instant};

use cs_core::json::JsonValue;
use cs_core::{
    encode_catalog, CollaborativeScoper, CollaborativeSweep, CombinationRule, GlobalScoper,
    SchemaSignatures,
};
use cs_datasets::synthetic::{generate, SyntheticConfig};
use cs_match::{
    AnnConfig, AnnIndex, AnnMatcher, ClusterMatcher, ElementSet, HybridMatcher, LshMatcher,
    Matcher, NamedSet, SimMatcher,
};
use cs_oda::{LofDetector, OutlierDetector, PcaDetector, ZScoreDetector};

/// Version of the emitted document layout.
pub const SCHEMA_VERSION: usize = 1;

/// Sequence number of this baseline in the PR stack (`BENCH_6.json`).
pub const BENCH_ID: usize = 6;

/// Fraction of samples dropped from *each* end before the trimmed mean.
pub const TRIM_FRACTION: f64 = 0.2;

/// Which calibration profile and datasets to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Tiny synthetic datasets, minimal samples; finishes in < 5 s in a
    /// debug build so it can run inside `cargo test -q` and verify.sh.
    Smoke,
    /// Real OC3 / OC3-FO datasets with bench-grade calibration; produces
    /// the checked-in `BENCH_6.json` baseline (run in release).
    Full,
}

impl Mode {
    /// Stable string form used in the JSON document.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Smoke => "smoke",
            Mode::Full => "full",
        }
    }

    /// Measurement profile for this mode.
    pub fn config(self) -> MeasureConfig {
        match self {
            Mode::Smoke => MeasureConfig::smoke(),
            Mode::Full => MeasureConfig::full(),
        }
    }

    /// Number of explained-variance grid points the sweep bench assesses.
    pub fn sweep_points(self) -> usize {
        match self {
            Mode::Smoke => 5,
            Mode::Full => 50,
        }
    }
}

/// Calibration and sampling parameters for [`measure`].
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Number of measured samples per benchmark.
    pub sample_size: usize,
    /// Minimum wall-clock time one sample should cover; iteration counts
    /// are grown until a sample reaches it.
    pub target_sample: Duration,
    /// Hard cap on iterations per sample.
    pub max_iters: u64,
}

impl MeasureConfig {
    /// Smoke profile: single-digit milliseconds per benchmark.
    pub fn smoke() -> Self {
        Self {
            sample_size: 3,
            target_sample: Duration::from_micros(200),
            max_iters: 8,
        }
    }

    /// Full profile: matches the console bench harness.
    pub fn full() -> Self {
        Self {
            sample_size: 15,
            target_sample: Duration::from_millis(5),
            max_iters: 1 << 20,
        }
    }
}

/// A wall-clock whose readings are non-decreasing by construction.
///
/// `Instant` is already monotonic on every platform Rust supports; this
/// wrapper additionally pins the *sequence* of readings (each reading is
/// clamped to at least the previous one) so downstream subtraction can
/// never underflow, and makes that property directly testable.
#[derive(Debug)]
pub struct MonotoneTimer {
    start: Instant,
    last_ns: u64,
}

impl MonotoneTimer {
    /// Starts the clock at zero.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
            last_ns: 0,
        }
    }

    /// Nanoseconds since [`MonotoneTimer::start`]; never less than any
    /// previous reading from the same timer.
    pub fn elapsed_ns(&mut self) -> u64 {
        let now = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.last_ns = self.last_ns.max(now);
        self.last_ns
    }
}

/// Symmetric trimmed mean: sorts, drops `⌊n·trim⌋` samples from each end
/// (never emptying the slice), and averages the rest. Returns `0.0` for an
/// empty input.
pub fn trimmed_mean_ns(samples: &[u64], trim_fraction: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let requested = (sorted.len() as f64 * trim_fraction.clamp(0.0, 0.5)).floor() as usize;
    let drop = requested.min((sorted.len() - 1) / 2);
    let kept = &sorted[drop..sorted.len() - drop];
    kept.iter().map(|&ns| ns as f64).sum::<f64>() / kept.len() as f64
}

/// Per-benchmark timing statistics, all in nanoseconds per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchStats {
    /// Median per-iteration time across samples.
    pub median_ns: u64,
    /// Fastest sample.
    pub min_ns: u64,
    /// Slowest sample.
    pub max_ns: u64,
    /// [`trimmed_mean_ns`] of the samples at [`TRIM_FRACTION`].
    pub trimmed_mean_ns: f64,
    /// Iterations each sample amortized over.
    pub iters_per_sample: u64,
    /// Number of samples collected.
    pub samples: usize,
}

fn run_batch<O, F: FnMut() -> O>(iters: u64, f: &mut F) -> Duration {
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    start.elapsed()
}

/// Calibrates an iteration count against `config.target_sample`, collects
/// `config.sample_size` samples on a [`MonotoneTimer`], and reduces them
/// to [`BenchStats`].
pub fn measure<O, F: FnMut() -> O>(config: &MeasureConfig, mut f: F) -> BenchStats {
    // Calibrate (doubles as warm-up): grow the per-sample iteration count
    // until one sample covers the target, converging via the observed rate.
    let target_ns = config.target_sample.as_nanos() as u64;
    let mut iters: u64 = 1;
    loop {
        let elapsed = run_batch(iters, &mut f);
        if elapsed >= config.target_sample || iters >= config.max_iters {
            break;
        }
        let scaled = if elapsed.is_zero() {
            iters.saturating_mul(16)
        } else {
            (target_ns / (elapsed.as_nanos() as u64).max(1))
                .saturating_add(1)
                .saturating_mul(iters)
        };
        iters = scaled.max(iters * 2).min(config.max_iters);
    }

    let mut timer = MonotoneTimer::start();
    let mut per_iter: Vec<u64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size.max(1) {
        let before = timer.elapsed_ns();
        run_batch(iters, &mut f);
        let after = timer.elapsed_ns();
        per_iter.push((after - before) / iters);
    }
    per_iter.sort_unstable();
    BenchStats {
        median_ns: per_iter[per_iter.len() / 2],
        min_ns: per_iter[0],
        max_ns: per_iter[per_iter.len() - 1],
        trimmed_mean_ns: trimmed_mean_ns(&per_iter, TRIM_FRACTION),
        iters_per_sample: iters,
        samples: per_iter.len(),
    }
}

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Top-level group: `scoping`, `matching`, `scaling`, or `solver`.
    pub group: &'static str,
    /// Benchmark id, `workload/dataset`-style.
    pub id: String,
    /// Timing statistics.
    pub stats: BenchStats,
}

/// Pass-operation accounting for one dataset (§4.4): every element is
/// reconstructed by each of the `k − 1` foreign models, so collaborative
/// scoping spends exactly `|S| · (k − 1)` encoder–decoder passes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatasetCost {
    /// Dataset display name.
    pub name: String,
    /// Number of schemas `k`.
    pub schemas: usize,
    /// Total element count `|S|` (tables + attributes).
    pub total_elements: usize,
    /// `|S| · (k − 1)`.
    pub pass_operations: usize,
}

/// Computes the §4.4 pass-operation count straight from a catalog.
pub fn dataset_cost(name: &str, ds: &cs_datasets::Dataset) -> DatasetCost {
    let schemas = ds.catalog.schema_count();
    let total_elements = ds.catalog.element_count();
    DatasetCost {
        name: name.to_string(),
        schemas,
        total_elements,
        pass_operations: total_elements * schemas.saturating_sub(1),
    }
}

/// Everything one emitter run produced; serialize with [`to_json`].
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Profile the run used.
    pub mode: Mode,
    /// Worker count of the global thread pool during the run.
    pub threads: usize,
    /// Explained-variance grid size used by the sweep benchmark.
    pub sweep_points: usize,
    /// Per-dataset pass-operation accounting.
    pub datasets: Vec<DatasetCost>,
    /// All measured benchmarks, in emission order.
    pub records: Vec<BenchRecord>,
}

fn smoke_dataset() -> cs_datasets::Dataset {
    generate(&SyntheticConfig {
        schemas: 2,
        shared_concepts: 10,
        concepts_per_schema: 5,
        private_per_schema: 3,
        table_width: 4,
        alien_elements: 2,
        seed: 0xC5,
        ..SyntheticConfig::default()
    })
}

fn mode_datasets(mode: Mode) -> Vec<(String, cs_datasets::Dataset)> {
    match mode {
        Mode::Smoke => vec![("SYN-SMOKE".to_string(), smoke_dataset())],
        Mode::Full => vec![
            ("OC3".to_string(), cs_datasets::oc3()),
            ("OC3-FO".to_string(), cs_datasets::oc3_fo()),
        ],
    }
}

fn encode(ds: &cs_datasets::Dataset) -> SchemaSignatures {
    let encoder = cs_embed::SignatureEncoder::default();
    encode_catalog(&encoder, &ds.catalog)
}

fn synthetic_signatures(schemas: usize, elements_per_schema: usize, seed: u64) -> SchemaSignatures {
    let shared = (elements_per_schema / 2).min(30);
    let ds = generate(&SyntheticConfig {
        schemas,
        shared_concepts: 30,
        concepts_per_schema: shared,
        private_per_schema: elements_per_schema - shared,
        table_width: 8,
        alien_elements: 0,
        seed,
        ..SyntheticConfig::default()
    });
    encode(&ds)
}

fn push<O, F: FnMut() -> O>(
    out: &mut Vec<BenchRecord>,
    cfg: &MeasureConfig,
    group: &'static str,
    id: String,
    f: F,
) {
    let stats = measure(cfg, f);
    out.push(BenchRecord { group, id, stats });
}

fn bench_scoping(
    mode: Mode,
    cfg: &MeasureConfig,
    datasets: &[(String, cs_datasets::Dataset, SchemaSignatures)],
    out: &mut Vec<BenchRecord>,
) {
    for (name, ds, sigs) in datasets {
        push(
            out,
            cfg,
            "scoping",
            format!("encode_catalog/{name}"),
            || encode(ds),
        );
        let unified = sigs.unified();
        push(out, cfg, "scoping", format!("global_zscore/{name}"), || {
            ZScoreDetector.score(&unified)
        });
        push(out, cfg, "scoping", format!("global_lof20/{name}"), || {
            LofDetector::default().score(&unified)
        });
        push(out, cfg, "scoping", format!("global_pca05/{name}"), || {
            PcaDetector::with_variance(0.5).score(&unified)
        });
        push(
            out,
            cfg,
            "scoping",
            format!("collaborative_run_v08/{name}"),
            || CollaborativeScoper::new(0.8).run(sigs).expect("valid run"),
        );
        push(out, cfg, "scoping", format!("sweep_prepare/{name}"), || {
            CollaborativeSweep::prepare(sigs).expect("valid sweep")
        });
        let sweep = CollaborativeSweep::prepare(sigs).expect("valid sweep");
        let vs = crate::variance_grid(mode.sweep_points());
        push(out, cfg, "scoping", format!("sweep_grid/{name}"), || {
            sweep
                .assess_grid(&vs, CombinationRule::Any)
                .expect("valid grid")
        });
    }
}

fn bench_matching(
    cfg: &MeasureConfig,
    datasets: &[(String, cs_datasets::Dataset, SchemaSignatures)],
    out: &mut Vec<BenchRecord>,
) {
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(SimMatcher::new(0.6)),
        Box::new(ClusterMatcher::new(5)),
        Box::new(LshMatcher::new(5)),
    ];
    for (name, _, sigs) in datasets {
        let original: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
            .collect();
        let kept = CollaborativeScoper::new(0.75)
            .run(sigs)
            .expect("valid run")
            .outcome
            .kept();
        let streamlined: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::filtered(k, sigs.schema(k), &kept))
            .collect();
        for matcher in &matchers {
            push(
                out,
                cfg,
                "matching",
                format!("{}/original/{name}", matcher.name()),
                || matcher.match_pairs(&original),
            );
            push(
                out,
                cfg,
                "matching",
                format!("{}/streamlined/{name}", matcher.name()),
                || matcher.match_pairs(&streamlined),
            );
        }
        push(
            out,
            cfg,
            "matching",
            format!("preprocess_overhead/{name}"),
            || CollaborativeScoper::new(0.75).run(sigs).expect("valid run"),
        );
    }
}

/// Element display names per schema, aligned with [`ElementSet::full`]
/// ordering — the lexical leg of the hybrid matcher bench.
fn named_sets(ds: &cs_datasets::Dataset) -> Vec<NamedSet> {
    (0..ds.catalog.schema_count())
        .map(|k| {
            let schema = ds.catalog.schema(k);
            let mut ids = Vec::new();
            let mut names = Vec::new();
            for (e, r) in schema.element_refs().into_iter().enumerate() {
                ids.push(cs_schema::ElementId::new(k, e));
                names.push(match r {
                    cs_schema::ElementRef::Table { table } => schema.tables[table].name.clone(),
                    cs_schema::ElementRef::Attribute { table, attribute } => {
                        schema.tables[table].attributes[attribute].name.clone()
                    }
                });
            }
            NamedSet::new(k, ids, names)
        })
        .collect()
}

/// The sublinear retrieval group: seeded LSH index construction, the
/// two-stage (PCA prefilter → exact rerank) query path, and the matcher
/// facades built on it — dense-only [`AnnMatcher`] and the RRF-fused
/// [`HybridMatcher`].
fn bench_ann(
    cfg: &MeasureConfig,
    datasets: &[(String, cs_datasets::Dataset, SchemaSignatures)],
    out: &mut Vec<BenchRecord>,
) {
    let config = AnnConfig::with_k(5);
    for (name, ds, sigs) in datasets {
        let unified = sigs.unified();
        push(out, cfg, "ann", format!("index_build/{name}"), || {
            AnnIndex::build(unified.clone(), config)
        });
        let index = AnnIndex::build(unified.clone(), config);
        push(out, cfg, "ann", format!("search_k5/{name}"), || {
            (0..index.len())
                .map(|q| index.search(index.data().row(q), 5).len())
                .sum::<usize>()
        });

        let sets: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
            .collect();
        let ann = AnnMatcher::with_config(config);
        push(
            out,
            cfg,
            "ann",
            format!("{}/original/{name}", ann.name()),
            || ann.match_pairs(&sets),
        );
        let hybrid = HybridMatcher::new(config, named_sets(ds));
        push(
            out,
            cfg,
            "ann",
            format!("{}/original/{name}", hybrid.name()),
            || hybrid.match_pairs(&sets),
        );
    }
}

/// A generated catalog for the size / unlinkable-ratio sweeps: schema
/// count grows with the target so per-schema size stays bounded, and the
/// linkable-ratio knob pins the unlinkable fraction exactly.
fn scaling_dataset(total_attrs: usize, unlinkable: f64, seed: u64) -> cs_datasets::Dataset {
    let schemas = (total_attrs / 1_000).max(2);
    let per_schema = total_attrs / schemas;
    generate(&SyntheticConfig {
        schemas,
        shared_concepts: per_schema,
        concepts_per_schema: per_schema / 2,
        private_per_schema: per_schema - per_schema / 2,
        table_width: 8,
        alien_elements: 0,
        linkable_ratio: Some(1.0 - unlinkable),
        seed,
        ..SyntheticConfig::default()
    })
}

/// Encodes a sweep catalog at dimension 64 instead of the default 768:
/// the sweeps measure pipeline scaling in element count, and the 100k
/// point at full width would cost ~600 MB of signatures for no extra
/// signal.
fn scaling_encode(ds: &cs_datasets::Dataset) -> SchemaSignatures {
    let encoder = cs_embed::SignatureEncoder::new(
        cs_embed::EncoderConfig {
            dim: 64,
            ..Default::default()
        },
        cs_embed::Lexicon::default_lexicon(),
    );
    encode_catalog(&encoder, &ds.catalog)
}

fn bench_scaling(mode: Mode, cfg: &MeasureConfig, out: &mut Vec<BenchRecord>) {
    let (schemas_fixed, per_schema_steps, total_budget, schema_counts) = match mode {
        Mode::Full => (4usize, vec![25usize, 50, 100], 200usize, vec![2usize, 4, 8]),
        Mode::Smoke => (2, vec![8], 16, vec![2]),
    };
    for per_schema in per_schema_steps {
        let sigs = synthetic_signatures(schemas_fixed, per_schema, 7);
        let total = sigs.total_len();
        push(
            out,
            cfg,
            "scaling",
            format!("total_elements/global_pca/{total}"),
            || {
                GlobalScoper::new(PcaDetector::with_variance(0.5))
                    .scores(&sigs)
                    .expect("valid scores")
            },
        );
        push(
            out,
            cfg,
            "scaling",
            format!("total_elements/global_lof/{total}"),
            || {
                GlobalScoper::new(LofDetector::default())
                    .scores(&sigs)
                    .expect("valid scores")
            },
        );
        push(
            out,
            cfg,
            "scaling",
            format!("total_elements/collaborative/{total}"),
            || CollaborativeScoper::new(0.8).run(&sigs).expect("valid run"),
        );
    }
    for schemas in schema_counts {
        let sigs = synthetic_signatures(schemas, total_budget / schemas, 11);
        push(
            out,
            cfg,
            "scaling",
            format!("schema_count/collaborative/{schemas}"),
            || CollaborativeScoper::new(0.8).run(&sigs).expect("valid run"),
        );
        push(
            out,
            cfg,
            "scaling",
            format!("schema_count/global_pca/{schemas}"),
            || {
                GlobalScoper::new(PcaDetector::with_variance(0.5))
                    .scores(&sigs)
                    .expect("valid scores")
            },
        );
    }

    // Size and unlinkable-ratio sweeps over generated catalogs (ROADMAP
    // item 5): one-shot samples at the big points — a single 100k-element
    // collaborative pass is tens of seconds, calibration loops would take
    // hours. The exhaustive-rerank LSH matcher leg stops at `MATCH_CAP`
    // attributes — it re-ranks per query against every foreign schema,
    // which is quadratic-ish in total elements — while the budgeted ANN
    // matcher covers the full range including the 100k point.
    let (size_totals, ratio_total, ratios, sweep_cfg) = match mode {
        Mode::Full => (
            vec![1_000usize, 10_000, 100_000],
            2_000usize,
            vec![0.25, 0.5, 0.9],
            MeasureConfig {
                sample_size: 3,
                target_sample: Duration::from_millis(1),
                max_iters: 1,
            },
        ),
        Mode::Smoke => (vec![24usize, 48], 24, vec![0.5], *cfg),
    };
    const MATCH_CAP: usize = 10_000;
    for target in size_totals {
        let ds = scaling_dataset(target, 0.5, 0x5CA_1E);
        let sigs = scaling_encode(&ds);
        let total = sigs.total_len();
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("size/collaborative/{total}"),
            || CollaborativeScoper::new(0.8).run(&sigs).expect("valid run"),
        );
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("size/global_pca/{total}"),
            || {
                GlobalScoper::new(PcaDetector::with_variance(0.5))
                    .scores(&sigs)
                    .expect("valid scores")
            },
        );
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("size/sweep_prepare/{total}"),
            || CollaborativeSweep::prepare(&sigs).expect("valid sweep"),
        );
        let sets: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
            .collect();
        if target <= MATCH_CAP {
            push(
                out,
                &sweep_cfg,
                "scaling",
                format!("size/match_lsh/{total}"),
                || LshMatcher::new(5).match_pairs(&sets),
            );
        }
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("size/match_ann/{total}"),
            || AnnMatcher::new(5).match_pairs(&sets),
        );
    }
    for u in ratios {
        let ds = scaling_dataset(ratio_total, u, 0xA1_1E7);
        let sigs = scaling_encode(&ds);
        let tag = format!("u{:02}", (u * 100.0) as u32);
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("unlinkable/collaborative/{tag}"),
            || CollaborativeScoper::new(0.8).run(&sigs).expect("valid run"),
        );
        let sets: Vec<ElementSet> = (0..sigs.schema_count())
            .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
            .collect();
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("unlinkable/match_lsh/{tag}"),
            || LshMatcher::new(5).match_pairs(&sets),
        );
        push(
            out,
            &sweep_cfg,
            "scaling",
            format!("unlinkable/match_ann/{tag}"),
            || AnnMatcher::new(5).match_pairs(&sets),
        );
    }
}

/// Head-to-head comparison of the PCA eigensolvers and the matmul kernel
/// variants behind them, on a low-rank-plus-noise probe shaped like a
/// unified signature matrix (`n ≪ d`, decaying spectrum).
fn bench_solver(mode: Mode, cfg: &MeasureConfig, out: &mut Vec<BenchRecord>) {
    use cs_linalg::pca::ExplainedVariance;
    use cs_linalg::{kernels, Matrix, Pca, PcaConfig, PcaSolver, Xoshiro256};

    let (n, d, rank) = match mode {
        Mode::Full => (128usize, 512usize, 16usize),
        Mode::Smoke => (20, 48, 4),
    };
    let mut rng = Xoshiro256::seed_from(0xBE5C_11);
    let basis = Matrix::from_fn(rank, d, |_, _| rng.next_gaussian());
    let coeff = Matrix::from_fn(n, rank, |_, j| rng.next_gaussian() / (1.0 + j as f64));
    let mut data = coeff.matmul(&basis);
    for x in data.as_mut_slice() {
        *x += rng.next_gaussian() * 1e-3;
    }
    let v = ExplainedVariance::new(0.5).expect("valid v");
    for (label, solver) in [
        ("auto", PcaSolver::Auto),
        ("fullsvd", PcaSolver::FullSvd),
        ("gram", PcaSolver::Gram),
        ("truncated", PcaSolver::truncated()),
    ] {
        let config = PcaConfig::new().with_variance(v).with_solver(solver);
        push(
            out,
            cfg,
            "solver",
            format!("pca_fit_v05/{label}/{n}x{d}"),
            || Pca::fit_with(&data, config).expect("healthy probe"),
        );
    }

    let m = match mode {
        Mode::Full => 192usize,
        Mode::Smoke => 16,
    };
    let a = Matrix::from_fn(m, m, |_, _| rng.next_gaussian());
    let b = Matrix::from_fn(m, m, |_, _| rng.next_gaussian());
    let q = Matrix::from_fn(m, 8, |_, _| rng.next_gaussian());
    let w = Matrix::from_fn(8, m, |_, _| rng.next_gaussian());
    push(out, cfg, "solver", format!("matmul_blocked/{m}"), || {
        a.matmul(&b)
    });
    push(out, cfg, "solver", format!("matmul_f32acc/{m}"), || {
        kernels::matmul_f32acc(&a, &b, kernels::TILE)
    });
    push(out, cfg, "solver", format!("matmul_narrow/{m}x8"), || {
        kernels::matmul_narrow(&a, &q)
    });
    push(
        out,
        cfg,
        "solver",
        format!("matmul_chain/{m}x8x{m}"),
        || kernels::matmul_chain(&[&a, &q, &w]),
    );
}

/// Runs every benchmark group under `mode` and returns the report.
pub fn run(mode: Mode) -> BenchReport {
    let cfg = mode.config();
    let datasets: Vec<(String, cs_datasets::Dataset, SchemaSignatures)> = mode_datasets(mode)
        .into_iter()
        .map(|(name, ds)| {
            let sigs = encode(&ds);
            (name, ds, sigs)
        })
        .collect();
    let costs = datasets
        .iter()
        .map(|(name, ds, _)| dataset_cost(name, ds))
        .collect();
    let mut records = Vec::new();
    bench_scoping(mode, &cfg, &datasets, &mut records);
    bench_matching(&cfg, &datasets, &mut records);
    bench_scaling(mode, &cfg, &mut records);
    bench_ann(&cfg, &datasets, &mut records);
    bench_solver(mode, &cfg, &mut records);
    BenchReport {
        mode,
        threads: cs_core::pool::global().workers(),
        sweep_points: mode.sweep_points(),
        datasets: costs,
        records,
    }
}

fn record_json(r: &BenchRecord) -> JsonValue {
    JsonValue::object(vec![
        ("id", JsonValue::String(r.id.clone())),
        ("median_ns", JsonValue::Number(r.stats.median_ns as f64)),
        ("min_ns", JsonValue::Number(r.stats.min_ns as f64)),
        ("max_ns", JsonValue::Number(r.stats.max_ns as f64)),
        (
            "trimmed_mean_ns",
            JsonValue::Number(r.stats.trimmed_mean_ns),
        ),
        (
            "iters_per_sample",
            JsonValue::Number(r.stats.iters_per_sample as f64),
        ),
        ("samples", JsonValue::Number(r.stats.samples as f64)),
    ])
}

/// Serializes a report into the `BENCH_6.json` document model.
pub fn to_json(report: &BenchReport) -> JsonValue {
    let pass_ops: Vec<(&str, JsonValue)> = report
        .datasets
        .iter()
        .map(|c| {
            (
                c.name.as_str(),
                JsonValue::object(vec![
                    ("schemas", JsonValue::Number(c.schemas as f64)),
                    ("total_elements", JsonValue::Number(c.total_elements as f64)),
                    (
                        "pass_operations",
                        JsonValue::Number(c.pass_operations as f64),
                    ),
                ]),
            )
        })
        .collect();
    let groups: Vec<(&str, JsonValue)> = ["scoping", "matching", "scaling", "ann", "solver"]
        .into_iter()
        .map(|g| {
            let items = report
                .records
                .iter()
                .filter(|r| r.group == g)
                .map(record_json)
                .collect();
            (g, JsonValue::Array(items))
        })
        .collect();
    JsonValue::object(vec![
        ("schema_version", JsonValue::Number(SCHEMA_VERSION as f64)),
        ("bench_id", JsonValue::Number(BENCH_ID as f64)),
        ("mode", JsonValue::String(report.mode.as_str().to_string())),
        ("threads", JsonValue::Number(report.threads as f64)),
        (
            "sweep_points",
            JsonValue::Number(report.sweep_points as f64),
        ),
        ("pass_operations", JsonValue::object(pass_ops)),
        ("groups", JsonValue::object(groups)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_drops_symmetric_tails() {
        let samples: Vec<u64> = (1..=10).collect();
        // ⌊10·0.2⌋ = 2 dropped per end → mean of 3..=8.
        assert_eq!(trimmed_mean_ns(&samples, 0.2), 5.5);
    }

    #[test]
    fn trimmed_mean_suppresses_a_single_outlier() {
        let samples = [10, 10, 1000, 10, 10];
        assert_eq!(trimmed_mean_ns(&samples, 0.2), 10.0);
    }

    #[test]
    fn trimmed_mean_degenerate_inputs() {
        assert_eq!(trimmed_mean_ns(&[], 0.2), 0.0);
        assert_eq!(trimmed_mean_ns(&[42], 0.5), 42.0);
        // Never trims a slice down to nothing, even at the 0.5 cap.
        assert_eq!(trimmed_mean_ns(&[4, 8], 0.5), 6.0);
        // Fractions outside [0, 0.5] clamp rather than panic.
        assert_eq!(trimmed_mean_ns(&[4, 8], 7.0), 6.0);
        assert_eq!(trimmed_mean_ns(&[4, 8], -1.0), 6.0);
    }

    #[test]
    fn monotone_timer_readings_never_decrease() {
        let mut timer = MonotoneTimer::start();
        let mut last = 0u64;
        for _ in 0..1_000 {
            let now = timer.elapsed_ns();
            assert!(now >= last, "{now} < {last}");
            last = now;
        }
        assert!(last > 0, "clock should advance over 1000 readings");
    }

    #[test]
    fn measure_produces_ordered_stats() {
        let cfg = MeasureConfig::smoke();
        let stats = measure(&cfg, || (0..100u64).sum::<u64>());
        assert!(stats.min_ns <= stats.median_ns && stats.median_ns <= stats.max_ns);
        assert!(stats.trimmed_mean_ns >= stats.min_ns as f64);
        assert!(stats.trimmed_mean_ns <= stats.max_ns as f64);
        assert!(stats.iters_per_sample >= 1);
        assert_eq!(stats.samples, cfg.sample_size);
    }

    #[test]
    fn pass_operations_match_section_4_4_on_real_datasets() {
        // §4.4: OC3 spends 160·2 = 320 passes, OC3-FO 287·3 = 861.
        let oc3 = dataset_cost("OC3", &cs_datasets::oc3());
        assert_eq!((oc3.schemas, oc3.total_elements), (3, 160));
        assert_eq!(oc3.pass_operations, 320);
        let fo = dataset_cost("OC3-FO", &cs_datasets::oc3_fo());
        assert_eq!((fo.schemas, fo.total_elements), (4, 287));
        assert_eq!(fo.pass_operations, 861);
    }

    #[test]
    fn smoke_run_emits_full_schema_in_under_five_seconds() {
        let wall = Instant::now();
        let report = run(Mode::Smoke);
        let doc = to_json(&report);
        let elapsed = wall.elapsed();
        assert!(
            elapsed < Duration::from_secs(5),
            "smoke emitter took {elapsed:?}"
        );

        // The document round-trips through the hermetic JSON parser.
        let parsed = cs_core::json::parse(&doc.write_pretty()).expect("valid JSON");
        assert_eq!(parsed, doc);

        assert_eq!(
            doc.get("schema_version").and_then(JsonValue::as_usize),
            Some(SCHEMA_VERSION)
        );
        assert_eq!(
            doc.get("bench_id").and_then(JsonValue::as_usize),
            Some(BENCH_ID)
        );
        assert_eq!(doc.get("mode").and_then(JsonValue::as_str), Some("smoke"));
        assert!(
            doc.get("threads")
                .and_then(JsonValue::as_usize)
                .expect("threads")
                >= 1
        );

        // Pass-operation accounting is present and self-consistent.
        let costs = doc.get("pass_operations").expect("pass_operations");
        let syn = costs.get("SYN-SMOKE").expect("smoke dataset entry");
        let schemas = syn
            .get("schemas")
            .and_then(JsonValue::as_usize)
            .expect("schemas");
        let total = syn
            .get("total_elements")
            .and_then(JsonValue::as_usize)
            .expect("total_elements");
        assert_eq!(
            syn.get("pass_operations").and_then(JsonValue::as_usize),
            Some(total * (schemas - 1))
        );

        // The scaling group carries both sweep families (the budget gate
        // in bench_json keys on these id prefixes).
        let scaling = doc
            .get("groups")
            .and_then(|g| g.get("scaling"))
            .and_then(JsonValue::as_array)
            .expect("scaling group");
        let ids: Vec<&str> = scaling
            .iter()
            .filter_map(|r| r.get("id").and_then(JsonValue::as_str))
            .collect();
        for prefix in [
            "size/collaborative/",
            "size/global_pca/",
            "size/sweep_prepare/",
            "size/match_lsh/",
            "size/match_ann/",
            "unlinkable/collaborative/",
            "unlinkable/match_lsh/",
            "unlinkable/match_ann/",
        ] {
            assert!(
                ids.iter().any(|id| id.starts_with(prefix)),
                "scaling group lacks a {prefix} entry: {ids:?}"
            );
        }

        // The ann group carries the index path and both matcher facades.
        let ann = doc
            .get("groups")
            .and_then(|g| g.get("ann"))
            .and_then(JsonValue::as_array)
            .expect("ann group");
        let ann_ids: Vec<&str> = ann
            .iter()
            .filter_map(|r| r.get("id").and_then(JsonValue::as_str))
            .collect();
        for prefix in ["index_build/", "search_k5/", "ANN(5)/", "HYBRID("] {
            assert!(
                ann_ids.iter().any(|id| id.starts_with(prefix)),
                "ann group lacks a {prefix} entry: {ann_ids:?}"
            );
        }

        // All five groups are present, non-empty, and carry sane stats.
        let groups = doc.get("groups").expect("groups");
        for name in ["scoping", "matching", "scaling", "ann", "solver"] {
            let items = groups
                .get(name)
                .and_then(JsonValue::as_array)
                .unwrap_or_else(|| panic!("group {name}"));
            assert!(!items.is_empty(), "group {name} is empty");
            for item in items {
                assert!(item.get("id").and_then(JsonValue::as_str).is_some());
                let median = item
                    .get("median_ns")
                    .and_then(JsonValue::as_f64)
                    .expect("median_ns");
                let min = item
                    .get("min_ns")
                    .and_then(JsonValue::as_f64)
                    .expect("min_ns");
                let max = item
                    .get("max_ns")
                    .and_then(JsonValue::as_f64)
                    .expect("max_ns");
                assert!(min <= median && median <= max, "unordered stats in {name}");
            }
        }
    }
}
