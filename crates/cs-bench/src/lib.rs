//! # cs-bench
//!
//! Benchmark host crate. The bench targets in `benches/` run on the
//! in-workspace criterion-compatible [`harness`] (hermetic dependency
//! policy: no external crates) and are gated behind the `bench` feature:
//! `cargo bench -p cs-bench --features bench`.
//!
//! The [`emitter`] module is the machine-readable counterpart: the
//! `bench_json` binary (not feature-gated) runs the same workloads and
//! writes `BENCH_5.json`; `scripts/verify.sh` exercises it with `--smoke`
//! and gates the PCA hot path against `BENCH_BUDGET.json` via `--budget`.

pub mod emitter;
pub mod harness;

/// Standard explained-variance sweep used across bench targets, mirroring
/// the paper's `v ∈ (1..0)` grid.
pub fn variance_grid(steps: usize) -> Vec<f64> {
    assert!(steps >= 2, "need at least two grid points");
    (0..steps)
        .map(|i| {
            let t = i as f64 / (steps - 1) as f64;
            // from 0.99 down to 0.01
            0.99 - 0.98 * t
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_descending_and_bounded() {
        let g = variance_grid(20);
        assert_eq!(g.len(), 20);
        assert!(g.windows(2).all(|w| w[0] > w[1]));
        assert!(g.iter().all(|&v| v > 0.0 && v < 1.0));
    }

    #[test]
    #[should_panic(expected = "two grid points")]
    fn tiny_grid_panics() {
        variance_grid(1);
    }
}
