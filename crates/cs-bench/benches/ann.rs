//! Sublinear retrieval benches: seeded LSH index construction, the
//! two-stage (PCA prefilter → exact rerank) query path, and the matcher
//! facades on top — dense-only ANN and the RRF-fused hybrid. Companion
//! to the `ann` group in the JSON emitter.

use cs_bench::harness::{BenchmarkId, Criterion};
use cs_bench::{criterion_group, criterion_main};
use cs_match::{AnnConfig, AnnIndex, AnnMatcher, ElementSet, HybridMatcher, Matcher, NamedSet};
use std::hint::black_box;

/// Full attribute+table element sets for a dataset, one per schema.
fn element_sets(sigs: &cs_core::SchemaSignatures) -> Vec<ElementSet> {
    (0..sigs.schema_count())
        .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
        .collect()
}

/// Element display names aligned with [`ElementSet::full`] ordering.
fn named_sets(ds: &cs_datasets::Dataset) -> Vec<NamedSet> {
    (0..ds.catalog.schema_count())
        .map(|k| {
            let schema = ds.catalog.schema(k);
            let mut ids = Vec::new();
            let mut names = Vec::new();
            for (e, r) in schema.element_refs().into_iter().enumerate() {
                ids.push(cs_schema::ElementId::new(k, e));
                names.push(match r {
                    cs_schema::ElementRef::Table { table } => schema.tables[table].name.clone(),
                    cs_schema::ElementRef::Attribute { table, attribute } => {
                        schema.tables[table].attributes[attribute].name.clone()
                    }
                });
            }
            NamedSet::new(k, ids, names)
        })
        .collect()
}

fn bench_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann/index");
    group.sample_size(10);
    let config = AnnConfig::with_k(5);
    for (name, ds) in [
        ("oc3", cs_datasets::oc3()),
        ("oc3-fo", cs_datasets::oc3_fo()),
    ] {
        let encoder = cs_embed::SignatureEncoder::default();
        let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
        let unified = sigs.unified();
        group.bench_function(BenchmarkId::new("build", name), |b| {
            b.iter(|| black_box(AnnIndex::build(unified.clone(), config)))
        });
        let index = AnnIndex::build(unified.clone(), config);
        group.bench_function(BenchmarkId::new("search_k5", name), |b| {
            b.iter(|| {
                black_box(
                    (0..index.len())
                        .map(|q| index.search(index.data().row(q), 5).len())
                        .sum::<usize>(),
                )
            })
        });
    }
    group.finish();
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("ann/matchers");
    group.sample_size(10);
    let config = AnnConfig::with_k(5);
    for (name, ds) in [
        ("oc3", cs_datasets::oc3()),
        ("oc3-fo", cs_datasets::oc3_fo()),
    ] {
        let encoder = cs_embed::SignatureEncoder::default();
        let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
        let sets = element_sets(&sigs);
        let ann = AnnMatcher::with_config(config);
        group.bench_function(BenchmarkId::new(ann.name(), name), |b| {
            b.iter(|| black_box(ann.match_pairs(&sets)))
        });
        let hybrid = HybridMatcher::new(config, named_sets(&ds));
        group.bench_function(BenchmarkId::new(hybrid.name(), name), |b| {
            b.iter(|| black_box(hybrid.match_pairs(&sets)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index, bench_matchers);
criterion_main!(benches);
