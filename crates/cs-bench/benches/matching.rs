//! Figure-7 efficiency benches: matcher cost on original vs streamlined
//! schemas. The reduction ratio translates directly into wall-clock
//! savings for every matcher family.

use cs_bench::harness::{BenchmarkId, Criterion};
use cs_bench::{criterion_group, criterion_main};
use cs_core::CollaborativeScoper;
use cs_match::{ClusterMatcher, ElementSet, LshMatcher, Matcher, SimMatcher};
use std::hint::black_box;

/// Builds (original, streamlined) attribute element sets for a dataset.
fn element_sets(ds: &cs_datasets::Dataset) -> (Vec<ElementSet>, Vec<ElementSet>) {
    let encoder = cs_embed::SignatureEncoder::default();
    let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
    let original: Vec<ElementSet> = (0..sigs.schema_count())
        .map(|k| ElementSet::full(k, sigs.schema(k).clone()))
        .collect();
    let kept = CollaborativeScoper::new(0.75)
        .run(&sigs)
        .expect("valid dataset")
        .outcome
        .kept();
    let streamlined: Vec<ElementSet> = (0..sigs.schema_count())
        .map(|k| ElementSet::filtered(k, sigs.schema(k), &kept))
        .collect();
    (original, streamlined)
}

fn bench_matchers(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7/matchers");
    group.sample_size(10);
    let matchers: Vec<Box<dyn Matcher>> = vec![
        Box::new(SimMatcher::new(0.6)),
        Box::new(ClusterMatcher::new(5)),
        Box::new(LshMatcher::new(5)),
    ];
    for (name, ds) in [
        ("oc3", cs_datasets::oc3()),
        ("oc3-fo", cs_datasets::oc3_fo()),
    ] {
        let (original, streamlined) = element_sets(&ds);
        for matcher in &matchers {
            group.bench_function(
                BenchmarkId::new(format!("{}/original", matcher.name()), name),
                |b| b.iter(|| black_box(matcher.match_pairs(&original))),
            );
            group.bench_function(
                BenchmarkId::new(format!("{}/streamlined", matcher.name()), name),
                |b| b.iter(|| black_box(matcher.match_pairs(&streamlined))),
            );
        }
    }
    group.finish();
}

fn bench_streamlining_overhead(c: &mut Criterion) {
    // The pre-processing cost Figure 7 amortizes: one collaborative run.
    let mut group = c.benchmark_group("fig7/preprocess_overhead");
    group.sample_size(10);
    let ds = cs_datasets::oc3_fo();
    let encoder = cs_embed::SignatureEncoder::default();
    let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
    group.bench_function("collaborative_v075_oc3fo", |b| {
        b.iter(|| black_box(CollaborativeScoper::new(0.75).run(&sigs).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_matchers, bench_streamlining_overhead);
criterion_main!(benches);
