//! Section-3 complexity benches: global scoping scales with the unified
//! `|S|²` while collaborative scoping scales with the per-schema
//! `Σ|S_k|²` — the gap widens as elements spread over more schemas.

use cs_bench::harness::{BenchmarkId, Criterion, Throughput};
use cs_bench::{criterion_group, criterion_main};
use cs_core::{CollaborativeScoper, GlobalScoper};
use cs_datasets::synthetic::{generate, SyntheticConfig};
use cs_oda::{LofDetector, PcaDetector};
use std::hint::black_box;

fn synthetic_signatures(
    schemas: usize,
    elements_per_schema: usize,
    seed: u64,
) -> cs_core::SchemaSignatures {
    let config = SyntheticConfig {
        schemas,
        shared_concepts: 30,
        concepts_per_schema: (elements_per_schema / 2).min(30),
        private_per_schema: elements_per_schema - (elements_per_schema / 2).min(30),
        table_width: 8,
        alien_elements: 0,
        seed,
        ..SyntheticConfig::default()
    };
    let ds = generate(&config);
    let encoder = cs_embed::SignatureEncoder::default();
    cs_core::encode_catalog(&encoder, &ds.catalog)
}

fn bench_total_size_scaling(c: &mut Criterion) {
    // Fixed 4 schemas, growing element counts.
    let mut group = c.benchmark_group("scaling/total_elements");
    group.sample_size(10);
    for per_schema in [25usize, 50, 100] {
        let sigs = synthetic_signatures(4, per_schema, 7);
        let total = sigs.total_len();
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(BenchmarkId::new("global_pca", total), &sigs, |b, s| {
            let scoper = GlobalScoper::new(PcaDetector::with_variance(0.5));
            b.iter(|| black_box(scoper.scores(s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("global_lof", total), &sigs, |b, s| {
            let scoper = GlobalScoper::new(LofDetector::default());
            b.iter(|| black_box(scoper.scores(s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("collaborative", total), &sigs, |b, s| {
            b.iter(|| black_box(CollaborativeScoper::new(0.8).run(s).unwrap()))
        });
    }
    group.finish();
}

fn bench_schema_count_scaling(c: &mut Criterion) {
    // Fixed ~200 total elements, spread over more schemas: the paper notes
    // Σ|S_k|² shrinks relative to |S|² as k grows.
    let mut group = c.benchmark_group("scaling/schema_count");
    group.sample_size(10);
    for schemas in [2usize, 4, 8] {
        let per_schema = 200 / schemas;
        let sigs = synthetic_signatures(schemas, per_schema, 11);
        group.bench_with_input(BenchmarkId::new("collaborative", schemas), &sigs, |b, s| {
            b.iter(|| black_box(CollaborativeScoper::new(0.8).run(s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("global_pca", schemas), &sigs, |b, s| {
            let scoper = GlobalScoper::new(PcaDetector::with_variance(0.5));
            b.iter(|| black_box(scoper.scores(s).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_total_size_scaling,
    bench_schema_count_scaling
);
criterion_main!(benches);
