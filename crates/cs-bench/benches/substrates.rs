//! Substrate microbenches: the building blocks every experiment rests on.

use cs_bench::harness::{BenchmarkId, Criterion, Throughput};
use cs_bench::{criterion_group, criterion_main};
use cs_linalg::pca::ExplainedVariance;
use cs_linalg::{Matrix, Pca, Xoshiro256};
use cs_match::{FlatIndex, HyperplaneLsh, KMeans};
use cs_nn::{train_autoencoder, TrainConfig};
use cs_oda::{LofDetector, OutlierDetector};
use std::hint::black_box;

fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.next_gaussian())
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/matmul");
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        group.throughput(Throughput::Elements((n * n * n) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &(a, b), |bench, (a, b)| {
            bench.iter(|| black_box(a.matmul(b)))
        });
    }
    group.finish();
}

fn bench_pca_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/pca_fit");
    group.sample_size(10);
    for rows in [50usize, 150, 300] {
        let m = random_matrix(rows, 768, 3);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &m, |b, m| {
            b.iter(|| black_box(Pca::fit(m, ExplainedVariance::new(0.8).unwrap()).unwrap()))
        });
    }
    group.finish();
}

fn bench_encoder(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/encoder");
    let encoder = cs_embed::SignatureEncoder::default();
    // Warm the token cache with one pass, then measure steady-state.
    let texts: Vec<String> = (0..100)
        .map(|i| format!("ATTR_{i} CUSTOMER_ORDERS VARCHAR PRIMARY KEY"))
        .collect();
    for t in &texts {
        encoder.encode(t);
    }
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.bench_function("encode_100_texts_warm", |b| {
        b.iter(|| {
            for t in &texts {
                black_box(encoder.encode(t));
            }
        })
    });
    group.finish();
}

fn bench_lof(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/lof");
    group.sample_size(10);
    for n in [100usize, 300] {
        let m = random_matrix(n, 768, 5);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| black_box(LofDetector::default().score(m)))
        });
    }
    group.finish();
}

fn bench_kmeans(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/kmeans");
    group.sample_size(10);
    let m = random_matrix(200, 768, 7);
    for k in [5usize, 20] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &m, |b, m| {
            b.iter(|| black_box(KMeans::fit(m, k, 42)))
        });
    }
    group.finish();
}

fn bench_ann_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/ann");
    group.sample_size(20);
    let data = random_matrix(500, 768, 9);
    let queries = random_matrix(50, 768, 10);
    let flat = FlatIndex::build(data.clone());
    group.bench_function("flat_top5_x50", |b| {
        b.iter(|| {
            for q in 0..queries.rows() {
                black_box(flat.search(queries.row(q), 5));
            }
        })
    });
    let lsh = HyperplaneLsh::build(data, 8, 12, 11);
    group.bench_function("hyperplane_lsh_top5_x50", |b| {
        b.iter(|| {
            for q in 0..queries.rows() {
                black_box(lsh.search(queries.row(q), 5));
            }
        })
    });
    group.finish();
}

fn bench_autoencoder_training(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/autoencoder");
    group.sample_size(10);
    let data = random_matrix(160, 768, 13);
    let config = TrainConfig {
        epochs: 1,
        ..TrainConfig::default()
    };
    group.bench_function("one_epoch_768_100_10", |b| {
        b.iter(|| black_box(train_autoencoder(&data, &config)))
    });
    group.finish();
}

fn bench_ddl_parsing(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrates/ddl");
    group.bench_function("parse_all_four_schemas", |b| {
        b.iter(|| {
            black_box(cs_datasets::oc_oracle());
            black_box(cs_datasets::oc_mysql());
            black_box(cs_datasets::oc_hana());
            black_box(cs_datasets::formula_one());
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_pca_fit,
    bench_encoder,
    bench_lof,
    bench_kmeans,
    bench_ann_indexes,
    bench_autoencoder_training,
    bench_ddl_parsing
);
criterion_main!(benches);
