//! Design-decision ablation benches (DESIGN.md §5): the runtime side of
//! each alternative. (The *quality* side is reported by the
//! `cs-repro --bin ablation` binary.)

use cs_bench::harness::{BenchmarkId, Criterion};
use cs_bench::{criterion_group, criterion_main};
use cs_core::{CollaborativeScoper, CollaborativeSweep, CombinationRule};
use cs_linalg::{Matrix, Svd, Xoshiro256};
use cs_schema::SerializeOptions;
use std::hint::black_box;

/// A signature-shaped matrix: n rows of 768-d unit-ish vectors.
fn signature_shaped(n: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256::seed_from(seed);
    Matrix::from_fn(n, 768, |_, _| rng.next_gaussian() / 27.7)
}

fn bench_svd_paths(c: &mut Criterion) {
    // Ablation 2: Gram-matrix economy SVD vs one-sided Jacobi on the
    // short-and-wide signature shape.
    let mut group = c.benchmark_group("ablation/svd_path");
    group.sample_size(10);
    let m = signature_shaped(50, 3);
    group.bench_function("gram_50x768", |b| {
        b.iter(|| black_box(Svd::gram(&m).unwrap()))
    });
    // Jacobi on the full 768 columns is orders of magnitude slower; bench a
    // narrower slice so the target stays runnable.
    let narrow = Matrix::from_fn(50, 96, |i, j| m[(i, j)]);
    group.bench_function("jacobi_50x96", |b| {
        b.iter(|| black_box(Svd::jacobi(&narrow).unwrap()))
    });
    group.bench_function("gram_50x96", |b| {
        b.iter(|| black_box(Svd::gram(&narrow).unwrap()))
    });
    group.finish();
}

fn bench_sweep_vs_rerun(c: &mut Criterion) {
    // Ablation: the cached-projection sweep vs re-running Algorithm 1+2
    // per grid point.
    let mut group = c.benchmark_group("ablation/sweep_vs_rerun");
    group.sample_size(10);
    let ds = cs_datasets::oc3();
    let encoder = cs_embed::SignatureEncoder::default();
    let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
    let grid: Vec<f64> = (0..20).map(|i| 0.99 - 0.98 * (i as f64 / 19.0)).collect();
    group.bench_function("cached_sweep_20pts", |b| {
        b.iter(|| {
            let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
            for &v in &grid {
                black_box(sweep.assess_at(v).expect("valid v"));
            }
        })
    });
    group.bench_function("rerun_20pts", |b| {
        b.iter(|| {
            for &v in &grid {
                black_box(CollaborativeScoper::new(v).run(&sigs).unwrap());
            }
        })
    });
    group.finish();
}

fn bench_combination_rules(c: &mut Criterion) {
    // Ablation 3: OR vs AND vs voting combination (cost is identical by
    // construction; the bench documents that the rule choice is free).
    let mut group = c.benchmark_group("ablation/combination_rule");
    group.sample_size(10);
    let ds = cs_datasets::oc3();
    let encoder = cs_embed::SignatureEncoder::default();
    let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
    for (name, rule) in [
        ("any", CombinationRule::Any),
        ("all", CombinationRule::All),
        ("at_least_2", CombinationRule::AtLeast(2)),
    ] {
        group.bench_function(BenchmarkId::new("rule", name), |b| {
            b.iter(|| {
                black_box(
                    CollaborativeScoper::new(0.8)
                        .with_rule(rule)
                        .run(&sigs)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_serializer_options(c: &mut Criterion) {
    // Ablation 4: signature composition — full metadata vs names only.
    let mut group = c.benchmark_group("ablation/serializer");
    group.sample_size(10);
    let ds = cs_datasets::oc3();
    for (name, opts) in [
        ("full_metadata", SerializeOptions::default()),
        ("names_only", SerializeOptions::names_only()),
    ] {
        group.bench_function(BenchmarkId::new("encode", name), |b| {
            b.iter(|| {
                let encoder = cs_embed::SignatureEncoder::default();
                black_box(cs_core::encode_catalog_with(&encoder, &ds.catalog, &opts))
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_svd_paths,
    bench_sweep_vs_rerun,
    bench_combination_rules,
    bench_serializer_options
);
criterion_main!(benches);
