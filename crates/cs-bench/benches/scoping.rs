//! Table-4 efficiency benches: the cost of every scoping method on the
//! real datasets. The paper's claim: collaborative scoping is *more*
//! efficient than global scoping because the per-schema quadratic terms
//! `Σ|S_k|²` beat the unified `|S|²` (Section 3, "Computational
//! Complexity").

use cs_bench::harness::{BenchmarkId, Criterion};
use cs_bench::{criterion_group, criterion_main};
use cs_core::{CollaborativeScoper, CollaborativeSweep, GlobalScoper};
use cs_oda::{LofDetector, OutlierDetector, PcaDetector, ZScoreDetector};
use std::hint::black_box;

fn bench_global_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/global_scoping");
    group.sample_size(10);
    for (name, ds) in [
        ("oc3", cs_datasets::oc3()),
        ("oc3-fo", cs_datasets::oc3_fo()),
    ] {
        let encoder = cs_embed::SignatureEncoder::default();
        let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
        let unified = sigs.unified();
        group.bench_with_input(BenchmarkId::new("zscore", name), &unified, |b, m| {
            b.iter(|| black_box(ZScoreDetector.score(m)))
        });
        group.bench_with_input(BenchmarkId::new("lof20", name), &unified, |b, m| {
            b.iter(|| black_box(LofDetector::default().score(m)))
        });
        group.bench_with_input(BenchmarkId::new("pca05", name), &unified, |b, m| {
            b.iter(|| black_box(PcaDetector::with_variance(0.5).score(m)))
        });
    }
    group.finish();
}

fn bench_collaborative(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/collaborative");
    group.sample_size(10);
    for (name, ds) in [
        ("oc3", cs_datasets::oc3()),
        ("oc3-fo", cs_datasets::oc3_fo()),
    ] {
        let encoder = cs_embed::SignatureEncoder::default();
        let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
        group.bench_with_input(BenchmarkId::new("run_v08", name), &sigs, |b, s| {
            b.iter(|| black_box(CollaborativeScoper::new(0.8).run(s).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("sweep_prepare", name), &sigs, |b, s| {
            b.iter(|| black_box(CollaborativeSweep::prepare(s).unwrap()))
        });
        let sweep = CollaborativeSweep::prepare(&sigs).unwrap();
        group.bench_with_input(BenchmarkId::new("sweep_50_points", name), &sweep, |b, s| {
            b.iter(|| {
                for i in 0..50 {
                    let v = 0.99 - 0.98 * (i as f64 / 49.0);
                    black_box(s.assess_at(v).expect("valid v"));
                }
            })
        });
    }
    group.finish();
}

fn bench_phase1_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4/phase1_signatures");
    group.sample_size(10);
    for (name, ds) in [
        ("oc3", cs_datasets::oc3()),
        ("oc3-fo", cs_datasets::oc3_fo()),
    ] {
        group.bench_function(BenchmarkId::new("encode_catalog", name), |b| {
            b.iter(|| {
                // Fresh encoder per iteration: includes token-cache build-up,
                // matching a cold local deployment.
                let encoder = cs_embed::SignatureEncoder::default();
                black_box(cs_core::encode_catalog(&encoder, &ds.catalog))
            })
        });
    }
    group.finish();
}

fn bench_global_p_sweep(c: &mut Criterion) {
    // The rank→sort→filter part of global scoping, separated from scoring.
    let ds = cs_datasets::oc3_fo();
    let encoder = cs_embed::SignatureEncoder::default();
    let sigs = cs_core::encode_catalog(&encoder, &ds.catalog);
    let scoper = GlobalScoper::new(PcaDetector::with_variance(0.5));
    let scores = scoper.scores(&sigs).unwrap();
    let mut group = c.benchmark_group("table4/global_threshold_sweep");
    group.bench_function("50_points_oc3fo", |b| {
        b.iter(|| {
            for i in 0..50 {
                let p = i as f64 / 49.0;
                black_box(cs_core::scoping::scope_from_scores("b", &sigs, &scores, p));
            }
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_global_detectors,
    bench_collaborative,
    bench_phase1_encoding,
    bench_global_p_sweep
);
criterion_main!(benches);
