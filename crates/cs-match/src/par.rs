//! Deterministic fork-join map for query fan-out.
//!
//! Mirrors the `cs_core::pool` chunk-deal contract (DESIGN.md §8) with
//! scoped threads so cs-match stays below cs-core in the crate DAG: the
//! index range is dealt into at most `threads` *contiguous* chunks,
//! earlier chunks absorb the remainder, and results are reassembled in
//! index order. The output is therefore a pure function of `(n, f)` —
//! the thread count only changes wall-clock time, never a byte of the
//! result.

use cs_linalg::config;

/// Hard ceiling mirroring `cs_core::pool::MAX_THREADS`.
const MAX_THREADS: usize = 64;

/// Worker count for ANN query fan-out: an explicit `requested ≥ 1` wins;
/// `0` defers to the `CS_THREADS` knob, then to the machine.
pub(crate) fn resolve_threads(requested: usize) -> usize {
    let picked = if requested >= 1 {
        requested
    } else {
        match config::env_usize(config::THREADS) {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    };
    picked.clamp(1, MAX_THREADS)
}

/// Maps `f` over `0..n` with `threads` workers, returning results in
/// index order regardless of the worker count.
pub(crate) fn par_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.clamp(1, MAX_THREADS).min(n.max(1));
    if threads <= 1 || n < 2 {
        return (0..n).map(f).collect();
    }
    let base = n / threads;
    let rem = n % threads;
    let mut chunks = Vec::with_capacity(threads);
    let mut start = 0;
    for c in 0..threads {
        let len = base + usize::from(c < rem);
        chunks.push((start, start + len));
        start += len;
    }
    let f = &f;
    let mut slots: Vec<Vec<T>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|&(lo, hi)| scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ANN worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(n);
    for slot in &mut slots {
        out.append(slot);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_for_any_thread_count() {
        let expect: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(par_map_indexed(37, threads, |i| i * i), expect);
        }
    }

    #[test]
    fn degenerate_sizes() {
        assert!(par_map_indexed(0, 4, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, 4, |i| i), vec![0]);
    }

    #[test]
    fn explicit_request_wins_and_is_clamped() {
        assert_eq!(resolve_threads(3), 3);
        assert_eq!(resolve_threads(1000), MAX_THREADS);
        assert!(resolve_threads(0) >= 1);
    }
}
