//! Exact flat L2 nearest-neighbor index — the FAISS `IndexFlatL2`
//! equivalent the paper's LSH matcher is built on.

use cs_linalg::vecops::{sq_euclidean, total_cmp_f64};
use cs_linalg::Matrix;

/// A brute-force exact L2 index over row vectors.
#[derive(Debug, Clone)]
pub struct FlatIndex {
    data: Matrix,
}

impl FlatIndex {
    /// Builds an index over the rows of `data`.
    pub fn build(data: Matrix) -> Self {
        Self { data }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// Dimensionality of the indexed vectors.
    pub fn dim(&self) -> usize {
        self.data.cols()
    }

    /// Returns the `k` nearest rows to `query` as `(row index, squared L2
    /// distance)` pairs, closest first. Returns fewer than `k` if the index
    /// is smaller.
    pub fn search(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        assert_eq!(
            query.len(),
            self.data.cols(),
            "query dimensionality mismatch"
        );
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        // Bounded max-heap via sorted insertion into a small vec — k is
        // small (≤ 20) so this beats heap overhead.
        let mut best: Vec<(usize, f64)> = Vec::with_capacity(k + 1);
        for (i, row) in self.data.rows_iter().enumerate() {
            let d = sq_euclidean(query, row);
            if best.len() < k || d < best.last().expect("non-empty").1 {
                let pos = best
                    .binary_search_by(|&(_, bd)| total_cmp_f64(&bd, &d))
                    .unwrap_or_else(|e| e);
                best.insert(pos, (i, d));
                if best.len() > k {
                    best.pop();
                }
            }
        }
        best
    }

    /// All rows within squared distance `radius²` of the query.
    pub fn range_search(&self, query: &[f64], sq_radius: f64) -> Vec<(usize, f64)> {
        assert_eq!(
            query.len(),
            self.data.cols(),
            "query dimensionality mismatch"
        );
        self.data
            .rows_iter()
            .enumerate()
            .filter_map(|(i, row)| {
                let d = sq_euclidean(query, row);
                (d <= sq_radius).then_some((i, d))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    fn index() -> FlatIndex {
        FlatIndex::build(Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![5.0, 5.0],
        ]))
    }

    #[test]
    fn nearest_is_exact() {
        let idx = index();
        let hits = idx.search(&[0.1, 0.1], 2);
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
        assert!(hits[0].1 < hits[1].1);
    }

    #[test]
    fn k_larger_than_index_returns_all_sorted() {
        let idx = index();
        let hits = idx.search(&[0.0, 0.0], 10);
        assert_eq!(hits.len(), 4);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn k_zero_and_empty_index() {
        let idx = index();
        assert!(idx.search(&[0.0, 0.0], 0).is_empty());
        let empty = FlatIndex::build(Matrix::zeros(0, 2));
        assert!(empty.is_empty());
        assert!(empty.search(&[0.0, 0.0], 3).is_empty());
    }

    #[test]
    fn range_search_filters_by_radius() {
        let idx = index();
        let hits = idx.range_search(&[0.0, 0.0], 1.5);
        let ids: Vec<usize> = hits.iter().map(|&(i, _)| i).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn brute_force_agrees_with_naive_on_random_data() {
        let mut rng = Xoshiro256::seed_from(5);
        let data = Matrix::from_fn(50, 6, |_, _| rng.next_gaussian());
        let idx = FlatIndex::build(data.clone());
        let query: Vec<f64> = (0..6).map(|_| rng.next_gaussian()).collect();
        let hits = idx.search(&query, 5);
        // Naive check.
        let mut all: Vec<(usize, f64)> = (0..50)
            .map(|i| (i, sq_euclidean(&query, data.row(i))))
            .collect();
        all.sort_by(|a, b| total_cmp_f64(&a.1, &b.1));
        for (h, e) in hits.iter().zip(all.iter()) {
            assert_eq!(h.0, e.0);
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn wrong_query_dim_panics() {
        index().search(&[0.0], 1);
    }
}
