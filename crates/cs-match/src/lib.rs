//! # cs-match
//!
//! Matching and blocking algorithms for the ablation study (Section 4.1):
//! the three "semantic blocking" variants of Meduri et al. that the paper
//! evaluates on original vs streamlined schemas.
//!
//! - [`SimMatcher`] — exhaustive cosine similarity over the Cartesian
//!   product of every schema pair, thresholded at `t ∈ {0.4, 0.6, 0.8}`,
//! - [`ClusterMatcher`] — k-means (`k ∈ {2, 5, 20}`) per schema pair;
//!   same-cluster cross-schema pairs become linkages,
//! - [`LshMatcher`] — an exact flat L2 nearest-neighbor index per schema
//!   (FAISS `IndexFlatL2` equivalent) queried for top-`k ∈ {1, 5, 20}`,
//!   plus a true random-hyperplane LSH index ([`lsh::HyperplaneLsh`]) as
//!   the approximate variant.
//!
//! All matchers consume [`ElementSet`]s — a schema's (possibly
//! streamlined) elements with their signatures — and emit normalized
//! [`CandidatePair`]s, so the same code path serves the SOTA baseline
//! (original schemas) and the collaborative-scoping ablation (streamlined
//! schemas).

pub mod ann;
pub mod cluster;
pub mod flat;
pub mod fuse;
pub mod kmeans;
pub mod lexical;
pub mod lsh;
pub mod name;
mod par;
pub mod sim;

pub use ann::{AnnConfig, AnnIndex, AnnMatcher, AnnSimMatcher};
pub use cluster::ClusterMatcher;
pub use flat::FlatIndex;
pub use fuse::{HybridMatcher, RRF_K};
pub use kmeans::KMeans;
pub use lexical::LexicalIndex;
pub use lsh::{HyperplaneLsh, LshMatcher};
pub use name::{NameMatcher, NameMeasure, NamedSet};
pub use sim::SimMatcher;

use cs_linalg::Matrix;
use cs_schema::ElementId;
use std::collections::HashSet;

/// An unordered candidate linkage between elements of two schemas,
/// normalized so `a < b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CandidatePair {
    /// Smaller endpoint.
    pub a: ElementId,
    /// Larger endpoint.
    pub b: ElementId,
}

impl CandidatePair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    /// If the endpoints belong to the same schema.
    pub fn new(x: ElementId, y: ElementId) -> Self {
        assert_ne!(x.schema, y.schema, "candidate pairs span schemas");
        if x <= y {
            Self { a: x, b: y }
        } else {
            Self { a: y, b: x }
        }
    }
}

/// One schema's elements available for matching: ids aligned with the rows
/// of the signature matrix.
#[derive(Debug, Clone)]
pub struct ElementSet {
    /// Schema index in the catalog.
    pub schema: usize,
    /// Element ids, one per signature row.
    pub ids: Vec<ElementId>,
    /// Signatures, `len(ids) × dim`.
    pub signatures: Matrix,
}

impl ElementSet {
    /// Builds a set from a full schema signature matrix (canonical order).
    pub fn full(schema: usize, signatures: Matrix) -> Self {
        let ids = (0..signatures.rows())
            .map(|e| ElementId::new(schema, e))
            .collect();
        Self {
            schema,
            ids,
            signatures,
        }
    }

    /// Builds a set keeping only elements in `keep` (streamlined schemas).
    pub fn filtered(schema: usize, signatures: &Matrix, keep: &HashSet<ElementId>) -> Self {
        let mut ids = Vec::new();
        let mut rows = Vec::new();
        for e in 0..signatures.rows() {
            let id = ElementId::new(schema, e);
            if keep.contains(&id) {
                ids.push(id);
                rows.push(e);
            }
        }
        Self {
            schema,
            ids,
            signatures: signatures.select_rows(&rows),
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if no elements remain.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// A linkage-generating matcher over multiple element sets.
pub trait Matcher {
    /// Display name including parameters, e.g. `SIM(0.8)`.
    fn name(&self) -> String;

    /// Generates candidate pairs across every pair of element sets.
    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair>;
}

/// Deduplicates and sorts candidate pairs (matchers may emit duplicates
/// from symmetric passes).
pub fn dedup_pairs(mut pairs: Vec<CandidatePair>) -> Vec<CandidatePair> {
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_pair_normalizes() {
        let x = ElementId::new(1, 0);
        let y = ElementId::new(0, 3);
        let p = CandidatePair::new(x, y);
        assert_eq!(p.a, y);
        assert_eq!(p.b, x);
        assert_eq!(p, CandidatePair::new(y, x));
    }

    #[test]
    #[should_panic(expected = "span schemas")]
    fn same_schema_pair_panics() {
        let x = ElementId::new(0, 0);
        let y = ElementId::new(0, 1);
        CandidatePair::new(x, y);
    }

    #[test]
    fn element_set_full_and_filtered() {
        let m = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]);
        let full = ElementSet::full(2, m.clone());
        assert_eq!(full.len(), 3);
        assert_eq!(full.ids[1], ElementId::new(2, 1));

        let keep: HashSet<ElementId> = [ElementId::new(2, 0), ElementId::new(2, 2)]
            .into_iter()
            .collect();
        let filtered = ElementSet::filtered(2, &m, &keep);
        assert_eq!(filtered.len(), 2);
        assert_eq!(
            filtered.ids,
            vec![ElementId::new(2, 0), ElementId::new(2, 2)]
        );
        assert_eq!(filtered.signatures.row(1), m.row(2));
        assert!(!filtered.is_empty());
    }

    #[test]
    fn dedup_removes_duplicates() {
        let a = ElementId::new(0, 0);
        let b = ElementId::new(1, 0);
        let c = ElementId::new(1, 1);
        let pairs = vec![
            CandidatePair::new(a, b),
            CandidatePair::new(b, a),
            CandidatePair::new(a, c),
        ];
        let d = dedup_pairs(pairs);
        assert_eq!(d.len(), 2);
    }
}
