//! LSH: nearest-neighbor blocking.
//!
//! [`LshMatcher`] follows the paper's setup exactly: an exact flat-L2
//! index (FAISS `IndexFlatL2`) per schema, searched for the top-`k`
//! similar signatures of every element of every *other* schema, in both
//! directions, with the symmetric union deduplicated.
//!
//! [`HyperplaneLsh`] is a genuine locality-sensitive-hashing index (random
//! hyperplane signatures + multi-table banding) provided as the
//! approximate variant; a test pins its recall against the exact index.

use crate::flat::FlatIndex;
use crate::{dedup_pairs, CandidatePair, ElementSet, Matcher};
use cs_linalg::vecops::{sq_euclidean, total_cmp_f64};
use cs_linalg::{Matrix, Xoshiro256};
use std::collections::BTreeMap;

/// Top-k nearest-neighbor matcher over exact flat indexes.
#[derive(Debug, Clone, Copy)]
pub struct LshMatcher {
    k: usize,
}

impl LshMatcher {
    /// Creates a matcher retrieving the top `k ≥ 1` neighbors per query.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "top-k must be at least 1");
        Self { k }
    }

    /// The configured neighbor count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Matcher for LshMatcher {
    fn name(&self) -> String {
        format!("LSH({})", self.k)
    }

    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair> {
        // One index per schema.
        let indexes: Vec<FlatIndex> = sets
            .iter()
            .map(|s| FlatIndex::build(s.signatures.clone()))
            .collect();
        let mut out = Vec::new();
        for (qi, query_set) in sets.iter().enumerate() {
            for (ti, index) in indexes.iter().enumerate() {
                if qi == ti || index.is_empty() {
                    continue;
                }
                for (row, &qid) in query_set.ids.iter().enumerate() {
                    for (hit, _) in index.search(query_set.signatures.row(row), self.k) {
                        out.push(CandidatePair::new(qid, sets[ti].ids[hit]));
                    }
                }
            }
        }
        dedup_pairs(out)
    }
}

/// Random-hyperplane LSH index with banded multi-table lookup.
///
/// Signatures are hashed to `tables × band_bits` sign bits; candidates
/// share a full band in at least one table and are re-ranked by exact
/// distance. Sparse probes widen deterministically: single-bit-flip
/// neighbor buckets first, then an exact scan, so [`Self::search`] never
/// silently returns fewer than `k` hits while more rows exist
/// (DESIGN.md §14).
#[derive(Debug, Clone)]
pub struct HyperplaneLsh {
    data: Matrix,
    /// `tables` ordered maps: band value → row indices (ascending).
    /// BTreeMap keeps iteration deterministic for the lint gate; rows
    /// within a bucket are pushed in index order and stay sorted.
    buckets: Vec<BTreeMap<u64, Vec<usize>>>,
    /// Hyperplanes per table, each `band_bits × dim`.
    planes: Vec<Matrix>,
}

impl HyperplaneLsh {
    /// Builds an index with `tables` bands of `band_bits` hyperplanes each.
    pub fn build(data: Matrix, tables: usize, band_bits: usize, seed: u64) -> Self {
        assert!(
            tables >= 1 && band_bits >= 1,
            "need at least one table and bit"
        );
        assert!(band_bits <= 63, "band bits must fit a u64");
        let mut rng = Xoshiro256::seed_from(seed);
        let dim = data.cols();
        let mut planes = Vec::with_capacity(tables);
        let mut buckets = Vec::with_capacity(tables);
        for _ in 0..tables {
            let p = Matrix::from_fn(band_bits, dim, |_, _| rng.next_gaussian());
            let mut map: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
            for i in 0..data.rows() {
                let h = Self::hash(&p, data.row(i));
                map.entry(h).or_default().push(i);
            }
            planes.push(p);
            buckets.push(map);
        }
        Self {
            data,
            buckets,
            planes,
        }
    }

    fn hash(planes: &Matrix, v: &[f64]) -> u64 {
        let mut h = 0u64;
        for (bit, plane) in planes.rows_iter().enumerate() {
            let dot: f64 = plane.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
            if dot >= 0.0 {
                h |= 1 << bit;
            }
        }
        h
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.data.rows()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.data.rows() == 0
    }

    /// The vectors the index was built over (the hashing space).
    pub fn data(&self) -> &Matrix {
        &self.data
    }

    /// Candidate rows for `query`, at least `min` of them when the index
    /// holds that many.
    ///
    /// Three deterministic probe stages, each widening only if the
    /// previous one came up short: (1) the query's own band bucket in
    /// every table, (2) every single-bit-flip neighbor bucket of those
    /// bands, (3) an exact scan of all rows. The returned indices are
    /// sorted and deduplicated.
    pub fn candidates(&self, query: &[f64], min: usize) -> Vec<usize> {
        if self.is_empty() {
            return Vec::new();
        }
        let hashes: Vec<u64> = self
            .planes
            .iter()
            .map(|planes| Self::hash(planes, query))
            .collect();
        let mut out: Vec<usize> = Vec::new();
        for (h, map) in hashes.iter().zip(self.buckets.iter()) {
            if let Some(rows) = map.get(h) {
                out.extend_from_slice(rows);
            }
        }
        out.sort_unstable();
        out.dedup();
        if out.len() >= min {
            return out;
        }
        // Widened probe: all Hamming-distance-1 buckets of each band.
        for ((h, map), planes) in hashes
            .iter()
            .zip(self.buckets.iter())
            .zip(self.planes.iter())
        {
            for bit in 0..planes.rows() {
                if let Some(rows) = map.get(&(h ^ (1u64 << bit))) {
                    out.extend_from_slice(rows);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        if out.len() >= min {
            return out;
        }
        // Exact scan: banding is too sparse for this query.
        (0..self.data.rows()).collect()
    }

    /// Approximate top-`k` search: gathers bucket collisions across all
    /// tables — widening the probe when banding yields fewer than `k`
    /// candidates — and re-ranks them by exact squared distance.
    pub fn search(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let mut scored: Vec<(usize, f64)> = self
            .candidates(query, k)
            .into_iter()
            .map(|i| (i, sq_euclidean(query, self.data.row(i))))
            .collect();
        scored.sort_by(|a, b| total_cmp_f64(&a.1, &b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_schema::ElementId;

    fn sets() -> Vec<ElementSet> {
        let s0 = Matrix::from_rows(&[vec![0.0, 0.0], vec![4.0, 4.0]]);
        let s1 = Matrix::from_rows(&[vec![0.1, 0.0], vec![4.1, 4.0], vec![10.0, 10.0]]);
        vec![ElementSet::full(0, s0), ElementSet::full(1, s1)]
    }

    #[test]
    fn top_one_links_nearest_neighbors() {
        let pairs = LshMatcher::new(1).match_pairs(&sets());
        assert!(pairs.contains(&CandidatePair::new(
            ElementId::new(0, 0),
            ElementId::new(1, 0)
        )));
        assert!(pairs.contains(&CandidatePair::new(
            ElementId::new(0, 1),
            ElementId::new(1, 1)
        )));
        // The far point (1,2) queries back: its nearest in schema 0 is (0,1).
        assert!(pairs.contains(&CandidatePair::new(
            ElementId::new(1, 2),
            ElementId::new(0, 1)
        )));
        assert_eq!(pairs.len(), 3);
    }

    #[test]
    fn larger_k_is_superset() {
        let s = sets();
        let k1: std::collections::HashSet<_> =
            LshMatcher::new(1).match_pairs(&s).into_iter().collect();
        let k3: std::collections::HashSet<_> =
            LshMatcher::new(3).match_pairs(&s).into_iter().collect();
        assert!(k1.is_subset(&k3));
    }

    #[test]
    fn k_at_index_size_is_cartesian() {
        let s = sets();
        let pairs = LshMatcher::new(3).match_pairs(&s);
        assert_eq!(pairs.len(), 2 * 3);
    }

    #[test]
    fn pairs_are_deduplicated() {
        let pairs = LshMatcher::new(3).match_pairs(&sets());
        let mut sorted = pairs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(pairs.len(), sorted.len());
    }

    #[test]
    fn hyperplane_lsh_finds_near_duplicates() {
        let mut rng = Xoshiro256::seed_from(8);
        let dim = 32;
        let mut rows: Vec<Vec<f64>> = (0..100)
            .map(|_| (0..dim).map(|_| rng.next_gaussian()).collect())
            .collect();
        // Make row 1 a slight perturbation of row 0.
        rows[1] = rows[0]
            .iter()
            .map(|x| x + rng.next_gaussian() * 0.01)
            .collect();
        let query = rows[0].clone();
        let lsh = HyperplaneLsh::build(Matrix::from_rows(&rows), 8, 10, 42);
        let hits = lsh.search(&query, 2);
        assert_eq!(hits[0].0, 0, "query point itself first");
        assert_eq!(hits[1].0, 1, "perturbed twin second");
    }

    #[test]
    fn hyperplane_recall_against_exact() {
        let mut rng = Xoshiro256::seed_from(9);
        let dim = 16;
        let data = Matrix::from_fn(200, dim, |_, _| rng.next_gaussian());
        let exact = FlatIndex::build(data.clone());
        let lsh = HyperplaneLsh::build(data.clone(), 16, 8, 7);
        let mut recall_hits = 0usize;
        let mut total = 0usize;
        for q in 0..20 {
            let query = data.row(q).to_vec();
            let truth: std::collections::HashSet<usize> = exact
                .search(&query, 5)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let approx: std::collections::HashSet<usize> =
                lsh.search(&query, 5).into_iter().map(|(i, _)| i).collect();
            recall_hits += truth.intersection(&approx).count();
            total += truth.len();
        }
        let recall = recall_hits as f64 / total as f64;
        assert!(recall > 0.5, "LSH recall too low: {recall}");
    }

    #[test]
    fn sparse_buckets_fall_back_to_full_k() {
        // Regression: with many tables of wide bands over few, widely
        // separated points, the query's own buckets rarely hold k rows;
        // search must widen the probe (ultimately to an exact scan)
        // instead of silently returning a short list.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|i| {
                let mut v = vec![0.0; 24];
                v[i * 4] = 1000.0 * (i as f64 + 1.0);
                v[i * 4 + 1] = -500.0 * (i as f64 + 1.0);
                v
            })
            .collect();
        let lsh = HyperplaneLsh::build(Matrix::from_rows(&rows), 4, 16, 99);
        for q in 0..rows.len() {
            let hits = lsh.search(&rows[q], 4);
            assert_eq!(hits.len(), 4, "query {q} returned a short list");
            assert_eq!(hits[0].0, q, "query {q} must find itself first");
        }
        // k beyond the index size returns everything, exactly once.
        let all = lsh.search(&rows[0], 100);
        assert_eq!(all.len(), rows.len());
        let mut ids: Vec<usize> = all.iter().map(|&(i, _)| i).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), rows.len());
    }

    #[test]
    fn candidates_widen_monotonically() {
        let mut rng = Xoshiro256::seed_from(21);
        let data = Matrix::from_fn(64, 8, |_, _| rng.next_gaussian());
        let lsh = HyperplaneLsh::build(data.clone(), 2, 12, 5);
        let q = data.row(7).to_vec();
        let narrow = lsh.candidates(&q, 1);
        let wide = lsh.candidates(&q, 64);
        assert!(narrow.len() <= wide.len());
        assert_eq!(wide.len(), 64, "min at index size must reach every row");
        for w in narrow.windows(2) {
            assert!(w[0] < w[1], "candidates must be sorted/deduped");
        }
    }

    #[test]
    fn empty_lsh_index() {
        let lsh = HyperplaneLsh::build(Matrix::zeros(0, 4), 2, 4, 1);
        assert!(lsh.is_empty());
        assert!(lsh.search(&[0.0; 4], 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "top-k must be at least 1")]
    fn zero_k_panics() {
        LshMatcher::new(0);
    }

    #[test]
    #[should_panic(expected = "fit a u64")]
    fn too_many_band_bits_panics() {
        HyperplaneLsh::build(Matrix::zeros(1, 4), 1, 64, 1);
    }
}
