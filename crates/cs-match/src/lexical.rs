//! Std-only token-trigram lexical scoring for hybrid scoping
//! (DESIGN.md §14).
//!
//! Complements the dense signature channel with the surface signal the
//! embeddings can wash out: element names are split on delimiter and
//! camel-case boundaries, each token is padded and shredded into
//! character trigrams, and names are compared by Jaccard similarity of
//! their trigram *sets*. An inverted trigram index (ordered postings —
//! the `no-unordered-iteration` gate applies here) makes top-`k` lookup
//! touch only rows sharing at least one trigram instead of the full
//! cross product.
//!
//! Distinct from [`cs_embed::textsim::ngram_jaccard`]: that measure
//! shreds the raw string; this one tokenizes first, so `ORDER_DATE`,
//! `orderDate`, and `date_of_order` land on overlapping token grams.

use crate::{CandidatePair, NamedSet};
use cs_linalg::vecops::total_cmp_f64;
use std::collections::{BTreeMap, BTreeSet};

/// Splits a name on non-alphanumeric delimiters and lower→upper
/// camel-case boundaries; tokens come back lowercased.
pub fn tokenize(name: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut cur = String::new();
    let mut prev_lower = false;
    for ch in name.chars() {
        if !ch.is_alphanumeric() {
            if !cur.is_empty() {
                tokens.push(std::mem::take(&mut cur));
            }
            prev_lower = false;
            continue;
        }
        if ch.is_uppercase() && prev_lower && !cur.is_empty() {
            tokens.push(std::mem::take(&mut cur));
        }
        prev_lower = ch.is_lowercase() || ch.is_numeric();
        cur.extend(ch.to_lowercase());
    }
    if !cur.is_empty() {
        tokens.push(cur);
    }
    tokens
}

/// The boundary-padded character trigrams of a name's tokens.
pub fn name_trigrams(name: &str) -> BTreeSet<String> {
    let mut grams = BTreeSet::new();
    for token in tokenize(name) {
        let padded: Vec<char> = std::iter::once('#')
            .chain(token.chars())
            .chain(std::iter::once('#'))
            .collect();
        for w in padded.windows(3) {
            grams.insert(w.iter().collect());
        }
    }
    grams
}

/// Jaccard similarity of two names' trigram sets (`0.0` when both are
/// empty).
pub fn trigram_similarity(a: &str, b: &str) -> f64 {
    let (ga, gb) = (name_trigrams(a), name_trigrams(b));
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    if union == 0 {
        0.0
    } else {
        inter as f64 / union as f64
    }
}

/// Inverted token-trigram index over a list of names.
#[derive(Debug, Clone)]
pub struct LexicalIndex {
    grams: Vec<BTreeSet<String>>,
    postings: BTreeMap<String, Vec<usize>>,
}

impl LexicalIndex {
    /// Indexes `names` by row.
    pub fn build(names: &[String]) -> Self {
        let grams: Vec<BTreeSet<String>> = names.iter().map(|n| name_trigrams(n)).collect();
        let mut postings: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (row, set) in grams.iter().enumerate() {
            for g in set {
                postings.entry(g.clone()).or_default().push(row);
            }
        }
        Self { grams, postings }
    }

    /// Number of indexed names.
    pub fn len(&self) -> usize {
        self.grams.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.grams.is_empty()
    }

    /// Jaccard similarity between two indexed rows.
    pub fn similarity(&self, a: usize, b: usize) -> f64 {
        let inter = self.grams[a].intersection(&self.grams[b]).count();
        let union = self.grams[a].len() + self.grams[b].len() - inter;
        if union == 0 {
            0.0
        } else {
            inter as f64 / union as f64
        }
    }

    /// Top-`k` rows most similar to indexed row `query` among rows
    /// passing `keep`, best first (ties at the boundary included; rows
    /// sharing no trigram never appear).
    pub fn search_filtered(
        &self,
        query: usize,
        k: usize,
        keep: impl Fn(usize) -> bool,
    ) -> Vec<(usize, f64)> {
        if k == 0 || self.grams[query].is_empty() {
            return Vec::new();
        }
        // Postings store each row once per gram, so occurrence counts
        // across the query's grams are exactly |intersection|.
        let mut overlap: BTreeMap<usize, usize> = BTreeMap::new();
        for g in &self.grams[query] {
            if let Some(rows) = self.postings.get(g) {
                for &r in rows {
                    if r != query && keep(r) {
                        *overlap.entry(r).or_insert(0) += 1;
                    }
                }
            }
        }
        let qlen = self.grams[query].len();
        let mut scored: Vec<(usize, f64)> = overlap
            .into_iter()
            .map(|(r, inter)| {
                let union = qlen + self.grams[r].len() - inter;
                (r, inter as f64 / union as f64)
            })
            .collect();
        scored.sort_by(|a, b| total_cmp_f64(&b.1, &a.1).then(a.0.cmp(&b.0)));
        if scored.len() > k {
            let boundary = scored[k - 1].1;
            let mut end = k;
            while end < scored.len() && total_cmp_f64(&scored[end].1, &boundary).is_eq() {
                end += 1;
            }
            scored.truncate(end);
        }
        scored
    }
}

/// Cross-schema lexical ranking over named sets: every element queries a
/// global trigram index for its top-`k` foreign neighbors; pairs keep
/// their (symmetric) Jaccard score, deduplicated, best first.
pub fn ranked_lexical_pairs(sets: &[NamedSet], k: usize) -> Vec<(CandidatePair, f64)> {
    let nonempty: Vec<&NamedSet> = sets.iter().filter(|s| !s.is_empty()).collect();
    if nonempty.len() < 2 || k == 0 {
        return Vec::new();
    }
    let mut names = Vec::new();
    let mut ids = Vec::new();
    let mut schema_of = Vec::new();
    for set in &nonempty {
        for (r, &id) in set.ids.iter().enumerate() {
            names.push(set.names[r].clone());
            ids.push(id);
            schema_of.push(set.schema);
        }
    }
    let index = LexicalIndex::build(&names);
    let mut best: BTreeMap<CandidatePair, f64> = BTreeMap::new();
    for qi in 0..index.len() {
        for (r, score) in index.search_filtered(qi, k, |i| schema_of[i] != schema_of[qi]) {
            let pair = CandidatePair::new(ids[qi], ids[r]);
            best.entry(pair)
                .and_modify(|cur| {
                    if total_cmp_f64(&score, cur).is_gt() {
                        *cur = score;
                    }
                })
                .or_insert(score);
        }
    }
    let mut out: Vec<(CandidatePair, f64)> = best.into_iter().collect();
    out.sort_by(|a, b| total_cmp_f64(&b.1, &a.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_schema::ElementId;

    #[test]
    fn tokenizer_splits_delimiters_and_camel_case() {
        assert_eq!(tokenize("ORDER_DATE"), vec!["order", "date"]);
        assert_eq!(tokenize("orderDate"), vec!["order", "date"]);
        assert_eq!(tokenize("date-of.order2"), vec!["date", "of", "order2"]);
        assert!(tokenize("__ ~~").is_empty());
    }

    #[test]
    fn shared_tokens_score_high_across_conventions() {
        let s = trigram_similarity("ORDER_DATE", "orderDate");
        assert!((s - 1.0).abs() < 1e-12, "same tokens must score 1: {s}");
        assert!(trigram_similarity("ORDER_DATE", "date_of_order") > 0.5);
        assert!(trigram_similarity("ORDER_DATE", "ZIP") < 0.1);
        assert_eq!(trigram_similarity("", ""), 0.0);
    }

    #[test]
    fn index_search_matches_pairwise_similarity() {
        let names: Vec<String> = ["CUSTOMER_ID", "customerId", "CUSTOMER_NAME", "ZIP_CODE"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let index = LexicalIndex::build(&names);
        assert_eq!(index.len(), 4);
        let hits = index.search_filtered(0, 2, |_| true);
        assert_eq!(hits[0].0, 1, "identical token stream first");
        assert!((hits[0].1 - index.similarity(0, 1)).abs() < 1e-12);
        assert!(hits[0].1 > hits[1].1);
        // ZIP_CODE shares no trigram with CUSTOMER_ID.
        assert!(hits.iter().all(|&(r, _)| r != 3));
    }

    #[test]
    fn ranked_pairs_are_cross_schema_symmetric_and_sorted() {
        let sets = vec![
            NamedSet::new(
                0,
                vec![ElementId::new(0, 0), ElementId::new(0, 1)],
                vec!["CUSTOMER_ID".into(), "ORDER_DATE".into()],
            ),
            NamedSet::new(
                1,
                vec![ElementId::new(1, 0), ElementId::new(1, 1)],
                vec!["customerId".into(), "orderDate".into()],
            ),
        ];
        let ranked = ranked_lexical_pairs(&sets, 2);
        assert!(!ranked.is_empty());
        for w in ranked.windows(2) {
            assert!(total_cmp_f64(&w[0].1, &w[1].1).is_ge());
        }
        let top: Vec<CandidatePair> = ranked.iter().take(2).map(|&(p, _)| p).collect();
        assert!(top.contains(&CandidatePair::new(
            ElementId::new(0, 0),
            ElementId::new(1, 0)
        )));
        assert!(top.contains(&CandidatePair::new(
            ElementId::new(0, 1),
            ElementId::new(1, 1)
        )));
        // Schema order must not change the scored pair set.
        let flipped = vec![sets[1].clone(), sets[0].clone()];
        assert_eq!(ranked, ranked_lexical_pairs(&flipped, 2));
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        assert!(ranked_lexical_pairs(&[], 3).is_empty());
        let one = vec![NamedSet::new(
            0,
            vec![ElementId::new(0, 0)],
            vec!["A".into()],
        )];
        assert!(ranked_lexical_pairs(&one, 3).is_empty());
        let empties = vec![
            NamedSet::new(0, vec![], vec![]),
            NamedSet::new(1, vec![], vec![]),
        ];
        assert!(ranked_lexical_pairs(&empties, 3).is_empty());
    }
}
