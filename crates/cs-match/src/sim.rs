//! SIM: exhaustive cosine-threshold matching.
//!
//! Enumerates the full Cartesian product of every schema pair (the
//! "Preparation" module of Zhang et al.) and keeps pairs whose cosine
//! similarity meets the threshold `t`.

use crate::{CandidatePair, ElementSet, Matcher};
use cs_linalg::vecops::cosine;

/// Cosine-threshold matcher.
#[derive(Debug, Clone, Copy)]
pub struct SimMatcher {
    threshold: f64,
}

impl SimMatcher {
    /// Creates a matcher with threshold `t ∈ [-1, 1]`.
    pub fn new(threshold: f64) -> Self {
        assert!(
            (-1.0..=1.0).contains(&threshold),
            "cosine threshold must lie in [-1, 1]"
        );
        Self { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Matcher for SimMatcher {
    fn name(&self) -> String {
        format!("SIM({})", self.threshold)
    }

    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair> {
        let mut out = Vec::new();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let (x, y) = (&sets[i], &sets[j]);
                for (xi, xid) in x.ids.iter().enumerate() {
                    let xrow = x.signatures.row(xi);
                    for (yi, yid) in y.ids.iter().enumerate() {
                        if cosine(xrow, y.signatures.row(yi)) >= self.threshold {
                            out.push(CandidatePair::new(*xid, *yid));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Matrix;

    fn sets() -> Vec<ElementSet> {
        // Schema 0: two nearly orthogonal unit vectors.
        let s0 = Matrix::from_rows(&[vec![1.0, 0.0, 0.0], vec![0.0, 1.0, 0.0]]);
        // Schema 1: one close to s0[0], one oblique, one orthogonal to both.
        let s1 = Matrix::from_rows(&[
            vec![0.95, 0.05, 0.0],
            vec![0.7, 0.7, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        vec![ElementSet::full(0, s0), ElementSet::full(1, s1)]
    }

    #[test]
    fn high_threshold_keeps_only_near_duplicates() {
        let pairs = SimMatcher::new(0.9).match_pairs(&sets());
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].a, cs_schema::ElementId::new(0, 0));
        assert_eq!(pairs[0].b, cs_schema::ElementId::new(1, 0));
    }

    #[test]
    fn lower_threshold_is_superset() {
        let hi: std::collections::HashSet<_> = SimMatcher::new(0.8)
            .match_pairs(&sets())
            .into_iter()
            .collect();
        let lo: std::collections::HashSet<_> = SimMatcher::new(0.4)
            .match_pairs(&sets())
            .into_iter()
            .collect();
        assert!(hi.is_subset(&lo));
        assert!(lo.len() > hi.len());
    }

    #[test]
    fn threshold_minus_one_enumerates_cartesian() {
        let pairs = SimMatcher::new(-1.0).match_pairs(&sets());
        assert_eq!(pairs.len(), 2 * 3);
    }

    #[test]
    fn three_schemas_cover_all_pairs() {
        let mut s = sets();
        s.push(ElementSet::full(
            2,
            Matrix::from_rows(&[vec![1.0, 0.0, 0.0]]),
        ));
        let pairs = SimMatcher::new(-1.0).match_pairs(&s);
        // 2·3 + 2·1 + 3·1 = 11.
        assert_eq!(pairs.len(), 11);
    }

    #[test]
    fn empty_sets_yield_nothing() {
        let empty = vec![
            ElementSet::full(0, Matrix::zeros(0, 3)),
            ElementSet::full(1, Matrix::zeros(0, 3)),
        ];
        assert!(SimMatcher::new(0.5).match_pairs(&empty).is_empty());
    }

    #[test]
    fn name_and_threshold() {
        let m = SimMatcher::new(0.6);
        assert_eq!(m.name(), "SIM(0.6)");
        assert_eq!(m.threshold(), 0.6);
    }

    #[test]
    #[should_panic(expected = "cosine threshold")]
    fn out_of_range_threshold_panics() {
        SimMatcher::new(1.5);
    }
}
