//! Name-based string-similarity matching — the classic element-level
//! baseline (Section 2.2: "exclusively relying on string similarity …
//! suffers from labeling conflicts"). Provided to let users compare
//! lexical matching against the semantic signature matchers on the same
//! datasets, and to demonstrate exactly the labeling-conflict failure the
//! paper motivates with (`CNAME` of a car vs `CNAME` of a client).

use crate::{CandidatePair, Matcher};
use cs_schema::ElementId;

/// The string measure a [`NameMatcher`] applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameMeasure {
    /// Normalized Levenshtein similarity.
    Levenshtein,
    /// Jaro–Winkler similarity.
    JaroWinkler,
    /// Jaccard similarity over character trigrams.
    TrigramJaccard,
}

impl NameMeasure {
    /// Evaluates the measure on two names.
    pub fn similarity(self, a: &str, b: &str) -> f64 {
        match self {
            NameMeasure::Levenshtein => cs_embed::textsim::levenshtein_similarity(a, b),
            NameMeasure::JaroWinkler => cs_embed::textsim::jaro_winkler(a, b),
            NameMeasure::TrigramJaccard => cs_embed::textsim::ngram_jaccard(a, b, 3),
        }
    }
}

/// One schema's elements with their display names (signatures are not
/// needed for lexical matching).
#[derive(Debug, Clone)]
pub struct NamedSet {
    /// Schema index in the catalog.
    pub schema: usize,
    /// Element ids aligned with `names`.
    pub ids: Vec<ElementId>,
    /// Uppercased element names.
    pub names: Vec<String>,
}

impl NamedSet {
    /// Builds a set; names are upper-cased for case-insensitive matching.
    pub fn new(schema: usize, ids: Vec<ElementId>, names: Vec<String>) -> Self {
        assert_eq!(ids.len(), names.len(), "ids/names misaligned");
        let names = names.into_iter().map(|n| n.to_uppercase()).collect();
        Self { schema, ids, names }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Lexical name matcher: pairs whose name similarity meets the threshold.
#[derive(Debug, Clone, Copy)]
pub struct NameMatcher {
    measure: NameMeasure,
    threshold: f64,
}

impl NameMatcher {
    /// Creates a matcher; threshold in `[0, 1]`.
    pub fn new(measure: NameMeasure, threshold: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must lie in [0, 1]"
        );
        Self { measure, threshold }
    }

    /// Display name, e.g. `NAME[JaroWinkler](0.9)`.
    pub fn name(&self) -> String {
        format!("NAME[{:?}]({})", self.measure, self.threshold)
    }

    /// Generates candidate pairs across every pair of named sets.
    pub fn match_names(&self, sets: &[NamedSet]) -> Vec<CandidatePair> {
        let mut out = Vec::new();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                for (xi, xname) in sets[i].names.iter().enumerate() {
                    for (yi, yname) in sets[j].names.iter().enumerate() {
                        if self.measure.similarity(xname, yname) >= self.threshold {
                            out.push(CandidatePair::new(sets[i].ids[xi], sets[j].ids[yi]));
                        }
                    }
                }
            }
        }
        out
    }
}

/// Adapter: a [`NameMatcher`] over [`crate::ElementSet`]s cannot exist
/// (signatures carry no names), so lexical matching plugs into generic
/// pipelines through this wrapper holding its own name data.
#[derive(Debug, Clone)]
pub struct NameMatcherOverSets {
    matcher: NameMatcher,
    sets: Vec<NamedSet>,
}

impl NameMatcherOverSets {
    /// Bundles a matcher with its name data.
    pub fn new(matcher: NameMatcher, sets: Vec<NamedSet>) -> Self {
        Self { matcher, sets }
    }
}

impl Matcher for NameMatcherOverSets {
    fn name(&self) -> String {
        self.matcher.name()
    }

    fn match_pairs(&self, _sets: &[crate::ElementSet]) -> Vec<CandidatePair> {
        // Signature sets are ignored; the name data was captured at
        // construction. Kept-element filtering must therefore be applied
        // when building the NamedSets.
        self.matcher.match_names(&self.sets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets() -> Vec<NamedSet> {
        vec![
            NamedSet::new(
                0,
                vec![ElementId::new(0, 0), ElementId::new(0, 1)],
                vec!["CUSTOMER_ID".into(), "ORDER_DATE".into()],
            ),
            NamedSet::new(
                1,
                vec![
                    ElementId::new(1, 0),
                    ElementId::new(1, 1),
                    ElementId::new(1, 2),
                ],
                vec!["customerid".into(), "ORDERDATE".into(), "LAP_TIME".into()],
            ),
        ]
    }

    #[test]
    fn close_spellings_match() {
        let pairs = NameMatcher::new(NameMeasure::Levenshtein, 0.8).match_names(&sets());
        assert!(pairs.contains(&CandidatePair::new(
            ElementId::new(0, 0),
            ElementId::new(1, 0)
        )));
        assert!(pairs.contains(&CandidatePair::new(
            ElementId::new(0, 1),
            ElementId::new(1, 1)
        )));
        assert_eq!(pairs.len(), 2);
    }

    #[test]
    fn case_insensitive() {
        let s = vec![
            NamedSet::new(0, vec![ElementId::new(0, 0)], vec!["City".into()]),
            NamedSet::new(1, vec![ElementId::new(1, 0)], vec!["CITY".into()]),
        ];
        let pairs = NameMatcher::new(NameMeasure::JaroWinkler, 0.99).match_names(&s);
        assert_eq!(pairs.len(), 1);
    }

    #[test]
    fn measures_differ_in_leniency() {
        let lev = NameMatcher::new(NameMeasure::Levenshtein, 0.7).match_names(&sets());
        let tri = NameMatcher::new(NameMeasure::TrigramJaccard, 0.7).match_names(&sets());
        // Both find the near-duplicates; neither links LAP_TIME.
        for pairs in [&lev, &tri] {
            assert!(pairs.iter().all(|p| p.b != ElementId::new(1, 2)));
        }
    }

    #[test]
    fn labeling_conflict_demo() {
        // The paper's CNAME problem: identical names, different semantics —
        // a lexical matcher happily links them.
        let s = vec![
            NamedSet::new(0, vec![ElementId::new(0, 0)], vec!["CNAME".into()]),
            NamedSet::new(1, vec![ElementId::new(1, 0)], vec!["CNAME".into()]),
        ];
        let pairs = NameMatcher::new(NameMeasure::Levenshtein, 0.99).match_names(&s);
        assert_eq!(
            pairs.len(),
            1,
            "lexical matching cannot see the semantic clash"
        );
    }

    #[test]
    fn adapter_implements_matcher() {
        let m = NameMatcherOverSets::new(NameMatcher::new(NameMeasure::Levenshtein, 0.8), sets());
        assert!(m.name().contains("Levenshtein"));
        assert_eq!(m.match_pairs(&[]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        NameMatcher::new(NameMeasure::Levenshtein, 1.5);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_named_set_panics() {
        NamedSet::new(0, vec![ElementId::new(0, 0)], vec![]);
    }
}
