//! k-means clustering (Lloyd's algorithm with k-means++ seeding).

use cs_linalg::vecops::{sq_euclidean, total_cmp_f64};
use cs_linalg::{Matrix, Xoshiro256};

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Matrix,
    assignments: Vec<usize>,
    inertia: f64,
}

impl KMeans {
    /// Fits `k` clusters on the rows of `data` with deterministic
    /// k-means++ seeding from `seed`.
    ///
    /// `k` is clamped to the number of rows; empty input yields an empty
    /// model.
    pub fn fit(data: &Matrix, k: usize, seed: u64) -> Self {
        assert!(k >= 1, "k must be at least 1");
        let n = data.rows();
        if n == 0 {
            return Self {
                centroids: Matrix::zeros(0, data.cols()),
                assignments: Vec::new(),
                inertia: 0.0,
            };
        }
        let k = k.min(n);
        let mut rng = Xoshiro256::seed_from(seed);
        let mut centroids = kmeanspp_init(data, k, &mut rng);
        let mut assignments = vec![0usize; n];
        let max_iter = 100;
        let mut inertia = f64::INFINITY;

        for _ in 0..max_iter {
            // Assignment step.
            let mut changed = false;
            let mut new_inertia = 0.0;
            for i in 0..n {
                let row = data.row(i);
                let mut best = 0usize;
                let mut best_d = f64::INFINITY;
                for c in 0..k {
                    let d = sq_euclidean(row, centroids.row(c));
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
                new_inertia += best_d;
            }
            inertia = new_inertia;
            if !changed {
                break;
            }
            // Update step.
            let mut sums = Matrix::zeros(k, data.cols());
            let mut counts = vec![0usize; k];
            for i in 0..n {
                let c = assignments[i];
                counts[c] += 1;
                for (acc, &v) in sums.row_mut(c).iter_mut().zip(data.row(i)) {
                    *acc += v;
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f64;
                    for v in sums.row_mut(c) {
                        *v *= inv;
                    }
                    centroids.row_mut(c).copy_from_slice(sums.row(c));
                } else {
                    // Empty cluster: re-seed on the farthest point.
                    let far = (0..n)
                        .max_by(|&a, &b| {
                            let da = sq_euclidean(data.row(a), centroids.row(assignments[a]));
                            let db = sq_euclidean(data.row(b), centroids.row(assignments[b]));
                            total_cmp_f64(&da, &db)
                        })
                        .expect("n > 0");
                    centroids.row_mut(c).copy_from_slice(data.row(far));
                }
            }
        }
        Self {
            centroids,
            assignments,
            inertia,
        }
    }

    /// Cluster index per input row.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Fitted centroids (`k × dim`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Sum of squared distances to assigned centroids.
    pub fn inertia(&self) -> f64 {
        self.inertia
    }

    /// Number of clusters actually fitted.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// Predicts the nearest centroid for a new point.
    pub fn predict(&self, point: &[f64]) -> usize {
        (0..self.k())
            .min_by(|&a, &b| {
                total_cmp_f64(
                    &sq_euclidean(point, self.centroids.row(a)),
                    &sq_euclidean(point, self.centroids.row(b)),
                )
            })
            .expect("fitted model has centroids")
    }
}

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
fn kmeanspp_init(data: &Matrix, k: usize, rng: &mut Xoshiro256) -> Matrix {
    let n = data.rows();
    let mut chosen: Vec<usize> = vec![rng.next_below(n)];
    let mut d2: Vec<f64> = (0..n)
        .map(|i| sq_euclidean(data.row(i), data.row(chosen[0])))
        .collect();
    while chosen.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with chosen centroids.
            rng.next_below(n)
        } else {
            let mut target = rng.next_f64() * total;
            let mut pick = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    pick = i;
                    break;
                }
                target -= d;
            }
            pick
        };
        chosen.push(next);
        for i in 0..n {
            let d = sq_euclidean(data.row(i), data.row(next));
            if d < d2[i] {
                d2[i] = d;
            }
        }
    }
    data.select_rows(&chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs.
    fn blobs() -> Matrix {
        let mut rows = Vec::new();
        let mut rng = Xoshiro256::seed_from(11);
        for _ in 0..20 {
            rows.push(vec![rng.next_gaussian() * 0.2, rng.next_gaussian() * 0.2]);
        }
        for _ in 0..20 {
            rows.push(vec![
                8.0 + rng.next_gaussian() * 0.2,
                8.0 + rng.next_gaussian() * 0.2,
            ]);
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn separates_two_blobs() {
        let km = KMeans::fit(&blobs(), 2, 1);
        let a = km.assignments()[0];
        let b = km.assignments()[20];
        assert_ne!(a, b);
        assert!(km.assignments()[..20].iter().all(|&c| c == a));
        assert!(km.assignments()[20..].iter().all(|&c| c == b));
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = blobs();
        let i1 = KMeans::fit(&data, 1, 2).inertia();
        let i2 = KMeans::fit(&data, 2, 2).inertia();
        let i4 = KMeans::fit(&data, 4, 2).inertia();
        assert!(i2 < i1);
        assert!(i4 <= i2 + 1e-9);
    }

    #[test]
    fn k_clamps_to_row_count() {
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let km = KMeans::fit(&data, 10, 3);
        assert_eq!(km.k(), 2);
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn predict_matches_training_assignment() {
        let data = blobs();
        let km = KMeans::fit(&data, 2, 4);
        for i in 0..data.rows() {
            assert_eq!(km.predict(data.row(i)), km.assignments()[i]);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, 3, 7);
        let b = KMeans::fit(&data, 3, 7);
        assert_eq!(a.assignments(), b.assignments());
    }

    #[test]
    fn duplicate_points_do_not_crash() {
        let data = Matrix::from_rows(&vec![vec![1.0, 1.0]; 8]);
        let km = KMeans::fit(&data, 3, 5);
        assert_eq!(km.assignments().len(), 8);
        assert!(km.inertia() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let km = KMeans::fit(&Matrix::zeros(0, 4), 3, 1);
        assert_eq!(km.k(), 0);
        assert!(km.assignments().is_empty());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_panics() {
        KMeans::fit(&Matrix::zeros(2, 2), 0, 1);
    }
}
