//! Reciprocal-rank fusion of dense and lexical scoping channels
//! (DESIGN.md §14).
//!
//! RRF combines rankings without comparing their incommensurable scores
//! (squared distances vs Jaccard similarities): a pair at rank `r` in a
//! channel contributes `1 / (k₀ + r)`, and contributions sum across
//! channels. Ranks are *competition* ranks — pairs whose channel scores
//! are exactly equal share the rank of the first of their run — so the
//! fused score of a pair is a pure function of the score multisets, and
//! the fused ranking inherits the channels' schema-order invariance.

use crate::ann::{AnnConfig, AnnMatcher};
use crate::lexical::ranked_lexical_pairs;
use crate::{dedup_pairs, CandidatePair, ElementSet, Matcher, NamedSet};
use cs_linalg::vecops::total_cmp_f64;
use std::collections::BTreeMap;

/// The conventional RRF damping constant (Cormack et al.).
pub const RRF_K: f64 = 60.0;

/// 1-based competition ranks for a best-first scored list: equal scores
/// share a rank, the next distinct score resumes at its list position
/// (`1, 2, 2, 4, …`).
pub fn competition_ranks(scored: &[(CandidatePair, f64)]) -> Vec<(CandidatePair, usize)> {
    let mut out = Vec::with_capacity(scored.len());
    let mut rank = 0usize;
    for (i, &(pair, score)) in scored.iter().enumerate() {
        if i == 0 || total_cmp_f64(&score, &scored[i - 1].1).is_ne() {
            rank = i + 1;
        }
        out.push((pair, rank));
    }
    out
}

/// Fuses best-first rankings by reciprocal rank: every pair scores
/// `Σ 1/(k₀ + rankᵢ)` over the channels that ranked it. Returns the
/// fused list best-first (score descending, pair ascending on ties).
pub fn rrf_fuse(rankings: &[&[(CandidatePair, f64)]], k0: f64) -> Vec<(CandidatePair, f64)> {
    assert!(k0 > 0.0, "RRF damping constant must be positive");
    let mut fused: BTreeMap<CandidatePair, f64> = BTreeMap::new();
    for ranking in rankings {
        for (pair, rank) in competition_ranks(ranking) {
            *fused.entry(pair).or_insert(0.0) += 1.0 / (k0 + rank as f64);
        }
    }
    let mut out: Vec<(CandidatePair, f64)> = fused.into_iter().collect();
    out.sort_by(|a, b| total_cmp_f64(&b.1, &a.1).then(a.0.cmp(&b.0)));
    out
}

/// Hybrid scoping matcher: RRF fusion of the dense ANN channel with the
/// token-trigram lexical channel.
///
/// Like [`crate::name::NameMatcherOverSets`], the lexical channel's name
/// data cannot travel through [`ElementSet`]s, so the matcher carries
/// its own [`NamedSet`]s — any kept-element filtering must already be
/// applied to both views.
#[derive(Debug, Clone)]
pub struct HybridMatcher {
    ann: AnnConfig,
    names: Vec<NamedSet>,
    lexical_k: usize,
    budget: usize,
    rrf_k: f64,
}

impl HybridMatcher {
    /// Fuses an ANN channel under `ann` with a lexical channel over
    /// `names`, retrieving `ann.k` neighbors per element on both sides.
    /// No output budget: every fused pair is emitted.
    pub fn new(ann: AnnConfig, names: Vec<NamedSet>) -> Self {
        Self {
            lexical_k: ann.k,
            ann,
            names,
            budget: 0,
            rrf_k: RRF_K,
        }
    }

    /// Caps the fused output at `budget` pairs (ties at the boundary
    /// score included; `0` means unlimited).
    pub fn with_budget(mut self, budget: usize) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the lexical channel's per-element neighbor count.
    pub fn with_lexical_k(mut self, k: usize) -> Self {
        assert!(k >= 1, "lexical top-k must be at least 1");
        self.lexical_k = k;
        self
    }

    /// The ANN channel configuration.
    pub fn ann_config(&self) -> &AnnConfig {
        &self.ann
    }

    /// Fused pairs best-first with their RRF scores; the scored view
    /// behind [`Matcher::match_pairs`].
    pub fn ranked_pairs(&self, sets: &[ElementSet]) -> Vec<(CandidatePair, f64)> {
        let dense = AnnMatcher::with_config(self.ann).ranked_pairs(sets);
        let lexical = ranked_lexical_pairs(&self.names, self.lexical_k);
        let mut fused = rrf_fuse(&[&dense, &lexical], self.rrf_k);
        if self.budget > 0 && fused.len() > self.budget {
            let boundary = fused[self.budget - 1].1;
            let mut end = self.budget;
            while end < fused.len() && total_cmp_f64(&fused[end].1, &boundary).is_eq() {
                end += 1;
            }
            fused.truncate(end);
        }
        fused
    }
}

impl Matcher for HybridMatcher {
    fn name(&self) -> String {
        format!("HYBRID(ANN({})+LEX({}))", self.ann.k, self.lexical_k)
    }

    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair> {
        dedup_pairs(
            self.ranked_pairs(sets)
                .into_iter()
                .map(|(p, _)| p)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::{Matrix, Xoshiro256};
    use cs_schema::ElementId;

    fn pair(a: usize, b: usize) -> CandidatePair {
        CandidatePair::new(ElementId::new(0, a), ElementId::new(1, b))
    }

    #[test]
    fn competition_ranks_share_on_ties() {
        let scored = vec![
            (pair(0, 0), 0.9),
            (pair(0, 1), 0.5),
            (pair(0, 2), 0.5),
            (pair(0, 3), 0.1),
        ];
        let ranks: Vec<usize> = competition_ranks(&scored).iter().map(|&(_, r)| r).collect();
        assert_eq!(ranks, vec![1, 2, 2, 4]);
        assert!(competition_ranks(&[]).is_empty());
    }

    #[test]
    fn fusion_rewards_agreement() {
        let dense = vec![(pair(0, 0), 0.1), (pair(0, 1), 0.2), (pair(0, 2), 0.3)];
        let lexical = vec![(pair(0, 2), 0.9), (pair(0, 0), 0.8)];
        let fused = rrf_fuse(&[&dense, &lexical], RRF_K);
        // (0,0): ranks 1+2; (0,2): ranks 3+1; (0,1): rank 2 only.
        assert_eq!(fused[0].0, pair(0, 0));
        assert_eq!(fused[1].0, pair(0, 2));
        assert_eq!(fused[2].0, pair(0, 1));
        let expect = 1.0 / (RRF_K + 1.0) + 1.0 / (RRF_K + 2.0);
        assert!((fused[0].1 - expect).abs() < 1e-12);
    }

    #[test]
    fn fused_score_ignores_input_list_order_of_tied_runs() {
        let a = vec![(pair(0, 0), 0.5), (pair(0, 1), 0.5)];
        let b = vec![(pair(0, 1), 0.5), (pair(0, 0), 0.5)];
        assert_eq!(rrf_fuse(&[&a], RRF_K), rrf_fuse(&[&b], RRF_K));
    }

    fn hybrid_fixture(seed: u64) -> (HybridMatcher, Vec<ElementSet>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let sets: Vec<ElementSet> = (0..2)
            .map(|s| ElementSet::full(s, Matrix::from_fn(6, 8, |_, _| rng.next_gaussian())))
            .collect();
        let names = vec![
            NamedSet::new(
                0,
                sets[0].ids.clone(),
                vec![
                    "CUSTOMER_ID".into(),
                    "ORDER_DATE".into(),
                    "ZIP".into(),
                    "PRICE".into(),
                    "QTY".into(),
                    "NOTE".into(),
                ],
            ),
            NamedSet::new(
                1,
                sets[1].ids.clone(),
                vec![
                    "customerId".into(),
                    "orderDate".into(),
                    "postalCode".into(),
                    "unitPrice".into(),
                    "quantity".into(),
                    "comment".into(),
                ],
            ),
        ];
        (HybridMatcher::new(AnnConfig::with_k(3), names), sets)
    }

    #[test]
    fn hybrid_surfaces_lexical_twins_missed_by_random_signatures() {
        let (matcher, sets) = hybrid_fixture(17);
        let ranked = matcher.ranked_pairs(&sets);
        assert!(!ranked.is_empty());
        let lexical_twin = pair(0, 0); // CUSTOMER_ID ↔ customerId
        assert!(
            ranked.iter().any(|&(p, _)| p == lexical_twin),
            "fusion must carry the lexical channel's hit"
        );
        for w in ranked.windows(2) {
            assert!(total_cmp_f64(&w[0].1, &w[1].1).is_ge());
        }
    }

    #[test]
    fn budget_caps_output_tie_inclusively() {
        let (matcher, sets) = hybrid_fixture(23);
        let full = matcher.ranked_pairs(&sets);
        let capped = matcher.clone().with_budget(3).ranked_pairs(&sets);
        assert!(capped.len() >= 3.min(full.len()));
        assert!(capped.len() <= full.len());
        assert_eq!(&full[..capped.len()], &capped[..]);
    }

    #[test]
    fn matcher_trait_surface() {
        let (matcher, sets) = hybrid_fixture(29);
        assert_eq!(matcher.name(), "HYBRID(ANN(3)+LEX(3))");
        let pairs = matcher.match_pairs(&sets);
        let ranked = matcher.ranked_pairs(&sets);
        assert_eq!(pairs.len(), ranked.len());
    }

    #[test]
    #[should_panic(expected = "damping constant")]
    fn non_positive_k0_panics() {
        rrf_fuse(&[], 0.0);
    }
}
