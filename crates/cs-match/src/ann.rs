//! Sublinear approximate nearest-neighbor matching — the production path
//! behind the 100k-element scaling point (DESIGN.md §14).
//!
//! [`AnnIndex`] is the two-stage retrieval engine: a seeded
//! [`HyperplaneLsh`] over a *truncated* projection of the signatures
//! (the leading PCA components via [`TruncatedProjection`], so hashing
//! and prefiltering pay low-dimensional dot products), followed by an
//! exact full-dimension rerank of the surviving candidate budget.
//! [`AnnMatcher`] lifts the index into the [`Matcher`] trait by building
//! **one global index** over every schema's rows and excluding
//! same-schema hits at query time — per-schema indexes would put the
//! schema count back into the complexity and re-create the quadratic
//! cliff this module removes.
//!
//! Determinism contract: hyperplanes are drawn from a fixed seed, bucket
//! contents hold row indices in ascending order, query fan-out uses the
//! chunk-dealt [`crate::par`] map, and every truncation is tie-inclusive
//! on the exact score — so results are bit-identical across
//! `CS_THREADS` and invariant to schema order (the projection fits in
//! canonical row order).

use crate::{dedup_pairs, CandidatePair, ElementSet, HyperplaneLsh, Matcher};
use cs_linalg::vecops::{cosine, sq_euclidean, total_cmp_f64};
use cs_linalg::{Matrix, TruncatedProjection};
use std::collections::BTreeMap;

/// Tuning knobs for the ANN index and matcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AnnConfig {
    /// Neighbors retrieved per query (`≥ 1`).
    pub k: usize,
    /// LSH tables (`≥ 1`); more tables trade build time for recall.
    pub tables: usize,
    /// Sign bits per band; `0` sizes automatically from the row count.
    pub band_bits: usize,
    /// Max candidates surviving the prefilter into the exact rerank;
    /// values below `k` are treated as `k`.
    pub candidate_budget: usize,
    /// Truncated-projection dimensionality for hashing/prefiltering;
    /// `0` disables the projection (hash in full dimension).
    pub prefilter_dims: usize,
    /// Seed for the hyperplane draws and the projection fit.
    pub seed: u64,
    /// Worker threads for query fan-out; `0` defers to `CS_THREADS`,
    /// then to the machine. Never affects results, only wall time.
    pub threads: usize,
}

impl Default for AnnConfig {
    fn default() -> Self {
        Self {
            k: 5,
            tables: 8,
            band_bits: 0,
            candidate_budget: 128,
            prefilter_dims: 16,
            seed: 0xA2_2B,
            threads: 0,
        }
    }
}

impl AnnConfig {
    /// Default configuration retrieving `k` neighbors per query.
    pub fn with_k(k: usize) -> Self {
        Self {
            k,
            ..Self::default()
        }
    }

    /// Effective candidate budget (never below `k`).
    pub fn budget(&self) -> usize {
        self.candidate_budget.max(self.k)
    }

    fn validate(&self) {
        assert!(self.k >= 1, "top-k must be at least 1");
        assert!(self.tables >= 1, "need at least one LSH table");
        assert!(self.band_bits <= 63, "band bits must fit a u64");
    }

    /// Automatic band width: aim for a mean bucket occupancy of ~8 rows,
    /// clamped to `[4, 16]` bits.
    fn resolve_band_bits(&self, rows: usize) -> usize {
        if self.band_bits > 0 {
            return self.band_bits;
        }
        let mut bits = 4usize;
        while bits < 16 && (rows >> bits) > 8 {
            bits += 1;
        }
        bits
    }
}

/// Keeps the first `limit` entries of a `(score, index)`-sorted list plus
/// every entry tied with the boundary score, so the kept *set* does not
/// depend on index order (and hence not on schema order).
fn truncate_with_ties(scored: &mut Vec<(usize, f64)>, limit: usize) {
    if limit == 0 {
        scored.clear();
        return;
    }
    if scored.len() <= limit {
        return;
    }
    let boundary = scored[limit - 1].1;
    let mut end = limit;
    while end < scored.len() && total_cmp_f64(&scored[end].1, &boundary).is_eq() {
        end += 1;
    }
    scored.truncate(end);
}

/// Two-stage ANN index: banded hyperplane LSH over a truncated
/// projection, exact full-dimension rerank of the candidate budget.
#[derive(Debug, Clone)]
pub struct AnnIndex {
    full: Matrix,
    projection: Option<TruncatedProjection>,
    lsh: HyperplaneLsh,
    config: AnnConfig,
}

impl AnnIndex {
    /// Builds the index over the rows of `data`.
    ///
    /// The projection fit degrades gracefully (coordinate truncation) on
    /// non-finite or rank-deficient data, so poisoned catalogs index
    /// deterministically instead of aborting (DESIGN.md §10).
    pub fn build(data: Matrix, config: AnnConfig) -> Self {
        config.validate();
        let band_bits = config.resolve_band_bits(data.rows());
        let projection = (config.prefilter_dims > 0 && config.prefilter_dims < data.cols())
            .then(|| TruncatedProjection::fit(&data, config.prefilter_dims, config.seed));
        let hashed = match &projection {
            Some(p) => p.project_rows(&data),
            None => data.clone(),
        };
        let lsh = HyperplaneLsh::build(hashed, config.tables, band_bits, config.seed ^ 0x5EED);
        Self {
            full: data,
            projection,
            lsh,
            config,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.full.rows()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.full.rows() == 0
    }

    /// The full-dimension vectors the index holds.
    pub fn data(&self) -> &Matrix {
        &self.full
    }

    /// True when the prefilter runs on PCA components (vs coordinate
    /// truncation or no projection at all).
    pub fn prefilter_is_pca(&self) -> bool {
        self.projection.as_ref().is_some_and(|p| !p.is_coordinate())
    }

    /// Top-`k` rows by exact distance among rows passing `keep`, ties at
    /// the boundary included.
    ///
    /// Retrieval: project the query, gather banded candidates (widening
    /// sparse probes), drop filtered rows — falling back to an exact scan
    /// of the kept rows when fewer than `k` survive — prefilter down to
    /// the candidate budget by projected distance, then rerank the
    /// survivors by full-dimension distance.
    pub fn search_filtered(
        &self,
        query: &[f64],
        k: usize,
        keep: impl Fn(usize) -> bool,
    ) -> Vec<(usize, f64)> {
        assert_eq!(
            query.len(),
            self.full.cols(),
            "query dimensionality mismatch"
        );
        if k == 0 || self.is_empty() {
            return Vec::new();
        }
        let projected_query = self.projection.as_ref().map(|p| p.project(query));
        let hash_query: &[f64] = projected_query.as_deref().unwrap_or(query);
        let budget = self.config.budget();
        let mut kept: Vec<usize> = self
            .lsh
            .candidates(hash_query, budget.max(k))
            .into_iter()
            .filter(|&i| keep(i))
            .collect();
        if kept.len() < k {
            kept = (0..self.full.rows()).filter(|&i| keep(i)).collect();
        }
        if kept.len() > budget {
            let hashed = self.lsh.data();
            let mut scored: Vec<(usize, f64)> = kept
                .into_iter()
                .map(|i| (i, sq_euclidean(hash_query, hashed.row(i))))
                .collect();
            scored.sort_by(|a, b| total_cmp_f64(&a.1, &b.1).then(a.0.cmp(&b.0)));
            truncate_with_ties(&mut scored, budget);
            kept = scored.into_iter().map(|(i, _)| i).collect();
        }
        let mut reranked: Vec<(usize, f64)> = kept
            .into_iter()
            .map(|i| (i, sq_euclidean(query, self.full.row(i))))
            .collect();
        reranked.sort_by(|a, b| total_cmp_f64(&a.1, &b.1).then(a.0.cmp(&b.0)));
        truncate_with_ties(&mut reranked, k);
        reranked
    }

    /// Unfiltered top-`k` search (ties at the boundary included).
    pub fn search(&self, query: &[f64], k: usize) -> Vec<(usize, f64)> {
        self.search_filtered(query, k, |_| true)
    }
}

/// The concatenated rows of every non-empty element set, with maps back
/// to element ids and schemas.
struct GlobalRows {
    data: Matrix,
    ids: Vec<cs_schema::ElementId>,
    schema_of: Vec<usize>,
}

fn concat_sets(sets: &[ElementSet]) -> Option<GlobalRows> {
    let nonempty: Vec<&ElementSet> = sets.iter().filter(|s| !s.is_empty()).collect();
    if nonempty.len() < 2 {
        return None;
    }
    let dim = nonempty[0].signatures.cols();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    let mut ids = Vec::new();
    let mut schema_of = Vec::new();
    for set in &nonempty {
        assert_eq!(
            set.signatures.cols(),
            dim,
            "element sets must share signature dimensionality"
        );
        for (r, &id) in set.ids.iter().enumerate() {
            rows.push(set.signatures.row(r).to_vec());
            ids.push(id);
            schema_of.push(set.schema);
        }
    }
    Some(GlobalRows {
        data: Matrix::from_rows(&rows),
        ids,
        schema_of,
    })
}

/// Sublinear ANN matcher: one global two-stage index, cross-schema
/// top-`k` retrieval per element.
#[derive(Debug, Clone, Copy)]
pub struct AnnMatcher {
    config: AnnConfig,
}

impl AnnMatcher {
    /// Default configuration retrieving `k` neighbors per query.
    pub fn new(k: usize) -> Self {
        Self::with_config(AnnConfig::with_k(k))
    }

    /// Fully explicit configuration.
    pub fn with_config(config: AnnConfig) -> Self {
        config.validate();
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &AnnConfig {
        &self.config
    }

    /// Cross-schema candidate pairs scored by exact squared distance
    /// (ascending — best first), deduplicated to each pair's best score.
    ///
    /// This is the ranking the RRF fusion consumes ([`crate::fuse`]);
    /// [`Matcher::match_pairs`] is the same list with scores dropped.
    pub fn ranked_pairs(&self, sets: &[ElementSet]) -> Vec<(CandidatePair, f64)> {
        let Some(global) = concat_sets(sets) else {
            return Vec::new();
        };
        let index = AnnIndex::build(global.data, self.config);
        let threads = crate::par::resolve_threads(self.config.threads);
        let k = self.config.k;
        let schema_of = &global.schema_of;
        let ids = &global.ids;
        let per_query: Vec<Vec<(CandidatePair, f64)>> =
            crate::par::par_map_indexed(index.len(), threads, |qi| {
                let qs = schema_of[qi];
                index
                    .search_filtered(index.data().row(qi), k, |i| schema_of[i] != qs)
                    .into_iter()
                    .map(|(i, d)| (CandidatePair::new(ids[qi], ids[i]), d))
                    .collect()
            });
        let mut best: BTreeMap<CandidatePair, f64> = BTreeMap::new();
        for (pair, d) in per_query.into_iter().flatten() {
            best.entry(pair)
                .and_modify(|cur| {
                    if total_cmp_f64(&d, cur).is_lt() {
                        *cur = d;
                    }
                })
                .or_insert(d);
        }
        let mut out: Vec<(CandidatePair, f64)> = best.into_iter().collect();
        out.sort_by(|a, b| total_cmp_f64(&a.1, &b.1).then(a.0.cmp(&b.0)));
        out
    }
}

impl Matcher for AnnMatcher {
    fn name(&self) -> String {
        format!("ANN({})", self.config.k)
    }

    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair> {
        dedup_pairs(
            self.ranked_pairs(sets)
                .into_iter()
                .map(|(p, _)| p)
                .collect(),
        )
    }
}

/// ANN-accelerated SIM: cosine threshold applied to ANN candidates only
/// — the sublinear stand-in for [`crate::SimMatcher`]'s exhaustive
/// cross product, F1-gated against it on the scaling-quality grid.
#[derive(Debug, Clone, Copy)]
pub struct AnnSimMatcher {
    config: AnnConfig,
    threshold: f64,
}

impl AnnSimMatcher {
    /// Threshold in `[0, 1]` over cosine similarity of full signatures.
    pub fn new(config: AnnConfig, threshold: f64) -> Self {
        config.validate();
        assert!(
            (0.0..=1.0).contains(&threshold),
            "threshold must lie in [0, 1]"
        );
        Self { config, threshold }
    }

    /// The active ANN configuration.
    pub fn config(&self) -> &AnnConfig {
        &self.config
    }

    /// The cosine threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }
}

impl Matcher for AnnSimMatcher {
    fn name(&self) -> String {
        format!("ANN-SIM({})", self.threshold)
    }

    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair> {
        let Some(global) = concat_sets(sets) else {
            return Vec::new();
        };
        let index = AnnIndex::build(global.data, self.config);
        let threads = crate::par::resolve_threads(self.config.threads);
        let k = self.config.k;
        let schema_of = &global.schema_of;
        let ids = &global.ids;
        let threshold = self.threshold;
        let per_query: Vec<Vec<CandidatePair>> =
            crate::par::par_map_indexed(index.len(), threads, |qi| {
                let qs = schema_of[qi];
                let query = index.data().row(qi);
                index
                    .search_filtered(query, k, |i| schema_of[i] != qs)
                    .into_iter()
                    .filter(|&(i, _)| cosine(query, index.data().row(i)) >= threshold)
                    .map(|(i, _)| CandidatePair::new(ids[qi], ids[i]))
                    .collect()
            });
        dedup_pairs(per_query.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FlatIndex, SimMatcher};
    use cs_linalg::Xoshiro256;
    use cs_schema::ElementId;

    fn random_sets(schemas: usize, per: usize, dim: usize, seed: u64) -> Vec<ElementSet> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..schemas)
            .map(|s| ElementSet::full(s, Matrix::from_fn(per, dim, |_, _| rng.next_gaussian())))
            .collect()
    }

    #[test]
    fn index_recall_against_flat_is_high() {
        let mut rng = Xoshiro256::seed_from(13);
        let data = Matrix::from_fn(300, 32, |_, _| rng.next_gaussian());
        let exact = FlatIndex::build(data.clone());
        let index = AnnIndex::build(data.clone(), AnnConfig::with_k(10));
        let mut hits = 0usize;
        let mut total = 0usize;
        for q in 0..40 {
            let query = data.row(q).to_vec();
            let truth: std::collections::BTreeSet<usize> = exact
                .search(&query, 10)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            let approx: std::collections::BTreeSet<usize> = index
                .search(&query, 10)
                .into_iter()
                .map(|(i, _)| i)
                .collect();
            hits += truth.intersection(&approx).count();
            total += truth.len();
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "two-stage recall too low: {recall}");
    }

    #[test]
    fn rerank_orders_by_full_dimension_distance() {
        // Two vectors identical in the leading (high-variance) dims but
        // separated in the tail: only the full-dim rerank can order them.
        let mut rows = vec![vec![0.0; 8]; 3];
        rows[0] = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.9];
        rows[1] = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1];
        rows[2] = vec![-5.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let query = vec![1.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let cfg = AnnConfig {
            prefilter_dims: 2,
            ..AnnConfig::with_k(2)
        };
        let index = AnnIndex::build(Matrix::from_rows(&rows), cfg);
        let hits = index.search(&query, 2);
        assert_eq!(hits[0].0, 1, "closest in full dimension must win");
        assert_eq!(hits[1].0, 0);
    }

    #[test]
    fn matcher_links_near_duplicates_across_schemas() {
        let mut sets = random_sets(2, 20, 16, 3);
        // Make schema 1's row 4 a near-copy of schema 0's row 7.
        let twin: Vec<f64> = sets[0].signatures.row(7).iter().map(|x| x + 1e-6).collect();
        sets[1].signatures.row_mut(4).copy_from_slice(&twin);
        let pairs = AnnMatcher::new(3).match_pairs(&sets);
        assert!(pairs.contains(&CandidatePair::new(
            ElementId::new(0, 7),
            ElementId::new(1, 4)
        )));
    }

    #[test]
    fn matcher_is_schema_order_invariant() {
        let sets = random_sets(3, 12, 16, 5);
        let mut permuted = vec![sets[2].clone(), sets[0].clone(), sets[1].clone()];
        let a = AnnMatcher::new(4).match_pairs(&sets);
        let b = AnnMatcher::new(4).match_pairs(&mut permuted);
        assert_eq!(a, b, "pair set must not depend on schema order");
    }

    #[test]
    fn degenerate_inputs_yield_empty() {
        let m = AnnMatcher::new(3);
        assert!(m.match_pairs(&[]).is_empty());
        let one = random_sets(1, 5, 8, 1);
        assert!(m.match_pairs(&one).is_empty());
        let empty = vec![
            ElementSet::full(0, Matrix::zeros(0, 8)),
            ElementSet::full(1, Matrix::zeros(0, 8)),
        ];
        assert!(m.match_pairs(&empty).is_empty());
        // Singleton schemas still pair up.
        let tiny = random_sets(2, 1, 8, 2);
        assert_eq!(m.match_pairs(&tiny).len(), 1);
    }

    #[test]
    fn nan_poisoned_rows_do_not_panic_and_stay_deterministic() {
        let mut sets = random_sets(2, 10, 12, 7);
        sets[0].signatures.row_mut(3).fill(f64::NAN);
        let a = AnnMatcher::new(3).match_pairs(&sets);
        let b = AnnMatcher::new(3).match_pairs(&sets);
        assert_eq!(a, b);
    }

    #[test]
    fn ann_sim_agrees_with_exhaustive_sim_on_small_sets() {
        let sets = random_sets(2, 15, 16, 11);
        // k at set size makes retrieval exhaustive; the pair sets must
        // then be identical.
        let cfg = AnnConfig {
            candidate_budget: 64,
            ..AnnConfig::with_k(15)
        };
        let approx = AnnSimMatcher::new(cfg, 0.2).match_pairs(&sets);
        let exact = SimMatcher::new(0.2).match_pairs(&sets);
        assert_eq!(approx, exact);
    }

    #[test]
    fn names_expose_parameters() {
        assert_eq!(AnnMatcher::new(7).name(), "ANN(7)");
        let sim = AnnSimMatcher::new(AnnConfig::default(), 0.6);
        assert_eq!(sim.name(), "ANN-SIM(0.6)");
        assert!((sim.threshold() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ranked_pairs_sorted_best_first_and_deduped() {
        let sets = random_sets(2, 10, 8, 9);
        let ranked = AnnMatcher::new(4).ranked_pairs(&sets);
        for w in ranked.windows(2) {
            assert!(total_cmp_f64(&w[0].1, &w[1].1).is_le());
        }
        let mut pairs: Vec<CandidatePair> = ranked.iter().map(|&(p, _)| p).collect();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), ranked.len());
    }

    #[test]
    fn auto_band_bits_scale_with_rows() {
        let cfg = AnnConfig::default();
        assert_eq!(cfg.resolve_band_bits(10), 4);
        assert!(cfg.resolve_band_bits(100_000) > cfg.resolve_band_bits(1_000));
        assert!(cfg.resolve_band_bits(usize::MAX / 2) <= 16);
        let fixed = AnnConfig {
            band_bits: 9,
            ..cfg
        };
        assert_eq!(fixed.resolve_band_bits(100_000), 9);
    }

    #[test]
    #[should_panic(expected = "top-k must be at least 1")]
    fn zero_k_panics() {
        AnnMatcher::new(0);
    }

    #[test]
    #[should_panic(expected = "share signature dimensionality")]
    fn mismatched_dims_panic() {
        let sets = vec![
            ElementSet::full(0, Matrix::zeros(2, 4)),
            ElementSet::full(1, Matrix::zeros(2, 5)),
        ];
        AnnMatcher::new(1).match_pairs(&sets);
    }
}
