//! CLUSTER: k-means blocking per schema pair.
//!
//! For every schema pair, the union of their signatures is clustered with
//! k-means; cross-schema pairs that land in the same cluster become
//! candidate linkages (Sahay et al. / JedAI-style attribute blocking).

use crate::kmeans::KMeans;
use crate::{CandidatePair, ElementSet, Matcher};

/// k-means blocking matcher.
#[derive(Debug, Clone, Copy)]
pub struct ClusterMatcher {
    k: usize,
    seed: u64,
}

impl ClusterMatcher {
    /// Creates a matcher with `k` clusters and a deterministic seed.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            seed: 0xC1_05_7E_12,
        }
    }

    /// Overrides the seed (for robustness experiments).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The configured cluster count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Matcher for ClusterMatcher {
    fn name(&self) -> String {
        format!("CLUSTER({})", self.k)
    }

    fn match_pairs(&self, sets: &[ElementSet]) -> Vec<CandidatePair> {
        let mut out = Vec::new();
        for i in 0..sets.len() {
            for j in (i + 1)..sets.len() {
                let (x, y) = (&sets[i], &sets[j]);
                if x.is_empty() || y.is_empty() {
                    continue;
                }
                let stacked = x.signatures.vstack(&y.signatures);
                let km = KMeans::fit(&stacked, self.k, self.seed);
                let assign = km.assignments();
                let (xa, ya) = assign.split_at(x.len());
                for (xi, &cx) in xa.iter().enumerate() {
                    for (yi, &cy) in ya.iter().enumerate() {
                        if cx == cy {
                            out.push(CandidatePair::new(x.ids[xi], y.ids[yi]));
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::{Matrix, Xoshiro256};
    use cs_schema::ElementId;

    /// Two schemas whose elements form two shared semantic blobs.
    fn two_blob_sets() -> Vec<ElementSet> {
        let mut rng = Xoshiro256::seed_from(3);
        let blob = |cx: f64, cy: f64, n: usize, rng: &mut Xoshiro256| -> Vec<Vec<f64>> {
            (0..n)
                .map(|_| {
                    vec![
                        cx + rng.next_gaussian() * 0.1,
                        cy + rng.next_gaussian() * 0.1,
                    ]
                })
                .collect()
        };
        let mut s0 = blob(0.0, 0.0, 4, &mut rng);
        s0.extend(blob(5.0, 5.0, 4, &mut rng));
        let mut s1 = blob(0.0, 0.0, 3, &mut rng);
        s1.extend(blob(5.0, 5.0, 3, &mut rng));
        vec![
            ElementSet::full(0, Matrix::from_rows(&s0)),
            ElementSet::full(1, Matrix::from_rows(&s1)),
        ]
    }

    #[test]
    fn same_blob_elements_are_linked() {
        let pairs = ClusterMatcher::new(2).match_pairs(&two_blob_sets());
        // Each blob: 4×3 cross pairs; two blobs → 24 pairs total.
        assert_eq!(pairs.len(), 24);
        // No cross-blob linkage.
        let cross_blob = CandidatePair::new(ElementId::new(0, 0), ElementId::new(1, 3));
        assert!(!pairs.contains(&cross_blob));
        let within = CandidatePair::new(ElementId::new(0, 0), ElementId::new(1, 0));
        assert!(pairs.contains(&within));
    }

    #[test]
    fn more_clusters_generate_fewer_pairs() {
        let sets = two_blob_sets();
        let few = ClusterMatcher::new(2).match_pairs(&sets).len();
        let many = ClusterMatcher::new(6).match_pairs(&sets).len();
        assert!(many <= few, "{many} vs {few}");
    }

    #[test]
    fn single_cluster_is_cartesian() {
        let sets = two_blob_sets();
        let pairs = ClusterMatcher::new(1).match_pairs(&sets);
        assert_eq!(pairs.len(), 8 * 6);
    }

    #[test]
    fn empty_set_is_skipped() {
        let mut sets = two_blob_sets();
        sets.push(ElementSet::full(2, Matrix::zeros(0, 2)));
        let pairs = ClusterMatcher::new(2).match_pairs(&sets);
        assert_eq!(pairs.len(), 24);
    }

    #[test]
    fn name_includes_k() {
        assert_eq!(ClusterMatcher::new(5).name(), "CLUSTER(5)");
    }

    #[test]
    fn deterministic() {
        let sets = two_blob_sets();
        let a = ClusterMatcher::new(3).match_pairs(&sets);
        let b = ClusterMatcher::new(3).match_pairs(&sets);
        assert_eq!(a, b);
    }
}
