//! Determinism contract for the ANN matching path (DESIGN.md §8, §14):
//! the ranked output of [`AnnMatcher`] and the RRF-fused
//! [`HybridMatcher`] must be bit-identical — pairs and scores — for
//! every worker count. The `AnnConfig::threads` knob resolves exactly
//! like `CS_THREADS` (both feed `resolve_threads`), so pinning it here
//! exercises the same chunk-deal scheduling the env var selects;
//! `scripts/verify.sh` additionally sweeps the env var itself over the
//! fault-matrix binaries, which run this matcher end to end.

use cs_linalg::{Matrix, Xoshiro256};
use cs_match::{AnnConfig, AnnMatcher, ElementSet, HybridMatcher, NamedSet};
use cs_schema::ElementId;

/// A seeded multi-schema workload: `schemas` gaussian signature blocks
/// plus synthetic display names with overlapping vocabulary so both the
/// dense and the lexical leg produce non-trivial rankings.
fn workload(schemas: usize, per: usize, dim: usize, seed: u64) -> (Vec<ElementSet>, Vec<NamedSet>) {
    let mut rng = Xoshiro256::seed_from(seed);
    let mut sets = Vec::new();
    let mut names = Vec::new();
    for k in 0..schemas {
        let m = Matrix::from_fn(per, dim, |_, _| rng.next_gaussian());
        sets.push(ElementSet::full(k, m));
        let ids: Vec<ElementId> = (0..per).map(|e| ElementId::new(k, e)).collect();
        let labels: Vec<String> = (0..per)
            .map(|e| format!("customer_order_{}_{k}", e % (per / 2).max(1)))
            .collect();
        names.push(NamedSet::new(k, ids, labels));
    }
    (sets, names)
}

/// Every thread count must reproduce the single-threaded ranking bit
/// for bit: the chunk-deal pool only changes who computes a query's
/// neighbors, never the result.
#[test]
fn ann_matcher_is_bit_identical_across_thread_counts() {
    let (sets, _) = workload(4, 40, 24, 0xDE7_1);
    let reference = AnnMatcher::with_config(AnnConfig {
        threads: 1,
        ..AnnConfig::with_k(5)
    })
    .ranked_pairs(&sets);
    assert!(!reference.is_empty());
    for threads in [2usize, 3, 8] {
        let got = AnnMatcher::with_config(AnnConfig {
            threads,
            ..AnnConfig::with_k(5)
        })
        .ranked_pairs(&sets);
        assert_eq!(
            reference, got,
            "AnnMatcher ranking diverged at threads={threads}"
        );
    }
}

/// The fused pipeline inherits the contract: RRF over the dense and
/// lexical rankings is deterministic, so the hybrid output must also be
/// bit-identical for every worker count.
#[test]
fn hybrid_pipeline_is_bit_identical_across_thread_counts() {
    let (sets, names) = workload(3, 30, 16, 0xF0_5E);
    let at = |threads: usize| {
        HybridMatcher::new(
            AnnConfig {
                threads,
                ..AnnConfig::with_k(4)
            },
            names.clone(),
        )
        .ranked_pairs(&sets)
    };
    let reference = at(1);
    assert!(!reference.is_empty());
    for threads in [2usize, 3, 8] {
        assert_eq!(
            reference,
            at(threads),
            "hybrid ranking diverged at threads={threads}"
        );
    }
}

/// Repeated runs of the same matcher instance are bit-identical — no
/// hidden state accumulates across calls.
#[test]
fn repeated_runs_are_bit_identical() {
    let (sets, names) = workload(3, 24, 16, 0x5EED_5);
    let ann = AnnMatcher::new(4);
    assert_eq!(ann.ranked_pairs(&sets), ann.ranked_pairs(&sets));
    let hybrid = HybridMatcher::new(AnnConfig::with_k(4), names);
    assert_eq!(hybrid.ranked_pairs(&sets), hybrid.ranked_pairs(&sets));
}
