//! Core metadata objects: schemas, tables, attributes.
//!
//! The paper's linkability problem treats **both tables and attributes** as
//! first-class "schema elements" that receive signatures, so the model also
//! defines [`ElementRef`], a schema-local address that names either.

/// SQL data type of an attribute, reduced to the families that matter for
/// metadata serialization. Anything exotic is preserved in `Other`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Whole numbers (`INT`, `INTEGER`, `BIGINT`, `SMALLINT`, `NUMBER` in
    /// Oracle without scale).
    Integer,
    /// Fixed-point numbers (`DECIMAL`, `NUMERIC`, Oracle `NUMBER(p,s)`).
    Decimal,
    /// Floating-point numbers (`FLOAT`, `DOUBLE`, `REAL`).
    Float,
    /// Variable-length strings; the optional length is kept for round-trips.
    Varchar(Option<u32>),
    /// Fixed-length strings.
    Char(Option<u32>),
    /// Unbounded text (`TEXT`, `CLOB`, `NCLOB`).
    Text,
    /// Calendar dates.
    Date,
    /// Date + time without timezone (`DATETIME`, Oracle `DATE` is mapped by
    /// the dataset DDL to this when it carries time).
    DateTime,
    /// Timestamps (`TIMESTAMP`, with or without timezone).
    Timestamp,
    /// Time of day.
    Time,
    /// Booleans.
    Boolean,
    /// Binary blobs (`BLOB`, `VARBINARY`).
    Blob,
    /// Anything else, verbatim.
    Other(String),
}

impl DataType {
    /// Canonical single-word spelling used by the `T^a` serialization (the
    /// paper serializes e.g. `NUMBER PRIMARY KEY`; we canonicalize families
    /// so ORACLE `NUMBER` and MySQL `INT` both read `INTEGER`).
    pub fn canonical_word(&self) -> &str {
        match self {
            DataType::Integer => "INTEGER",
            DataType::Decimal => "DECIMAL",
            DataType::Float => "FLOAT",
            DataType::Varchar(_) => "VARCHAR",
            DataType::Char(_) => "CHAR",
            DataType::Text => "TEXT",
            DataType::Date => "DATE",
            DataType::DateTime => "DATETIME",
            DataType::Timestamp => "TIMESTAMP",
            DataType::Time => "TIME",
            DataType::Boolean => "BOOLEAN",
            DataType::Blob => "BLOB",
            DataType::Other(s) => s,
        }
    }

    /// True for the numeric families.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Integer | DataType::Decimal | DataType::Float
        )
    }

    /// True for the textual families.
    pub fn is_textual(&self) -> bool {
        matches!(
            self,
            DataType::Varchar(_) | DataType::Char(_) | DataType::Text
        )
    }

    /// True for the temporal families.
    pub fn is_temporal(&self) -> bool {
        matches!(
            self,
            DataType::Date | DataType::DateTime | DataType::Timestamp | DataType::Time
        )
    }
}

/// Key constraint on an attribute. The paper restricts constraints to
/// `PRIMARY KEY` / `FOREIGN KEY` (the FK reference target is dropped from
/// the serialization, Section 2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Constraint {
    /// No key constraint.
    #[default]
    None,
    /// Member of the primary key.
    PrimaryKey,
    /// Foreign-key column.
    ForeignKey,
}

impl Constraint {
    /// The serialization suffix: empty, `PRIMARY KEY`, or `FOREIGN KEY`.
    pub fn words(&self) -> &'static str {
        match self {
            Constraint::None => "",
            Constraint::PrimaryKey => "PRIMARY KEY",
            Constraint::ForeignKey => "FOREIGN KEY",
        }
    }
}

/// Attribute metadata: `a = (an, tn, d, c)` in the paper's notation — the
/// table name is carried by the owning [`Table`].
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute (column) name as declared.
    pub name: String,
    /// Data type.
    pub data_type: DataType,
    /// Key constraint.
    pub constraint: Constraint,
}

impl Attribute {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, data_type: DataType, constraint: Constraint) -> Self {
        Self {
            name: name.into(),
            data_type,
            constraint,
        }
    }

    /// Unconstrained attribute.
    pub fn plain(name: impl Into<String>, data_type: DataType) -> Self {
        Self::new(name, data_type, Constraint::None)
    }
}

/// Table metadata: name plus its attributes, in declaration order.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name as declared.
    pub name: String,
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
}

impl Table {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Self {
        Self {
            name: name.into(),
            attributes,
        }
    }

    /// Looks up an attribute by case-insensitive name.
    pub fn attribute(&self, name: &str) -> Option<(usize, &Attribute)> {
        self.attributes
            .iter()
            .enumerate()
            .find(|(_, a)| a.name.eq_ignore_ascii_case(name))
    }
}

/// A relational schema: a named set of tables.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    /// Schema name (e.g. `OC-Oracle`).
    pub name: String,
    /// Tables in declaration order.
    pub tables: Vec<Table>,
}

impl Schema {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, tables: Vec<Table>) -> Self {
        Self {
            name: name.into(),
            tables,
        }
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of attributes across all tables.
    pub fn attribute_count(&self) -> usize {
        self.tables.iter().map(|t| t.attributes.len()).sum()
    }

    /// Total number of schema elements (attributes + tables) — the unit of
    /// the linkability problem.
    pub fn element_count(&self) -> usize {
        self.attribute_count() + self.table_count()
    }

    /// Looks up a table by case-insensitive name.
    pub fn table(&self, name: &str) -> Option<(usize, &Table)> {
        self.tables
            .iter()
            .enumerate()
            .find(|(_, t)| t.name.eq_ignore_ascii_case(name))
    }

    /// Enumerates every element of this schema in the canonical order used
    /// by signature matrices: all attributes (grouped by table, declaration
    /// order), then all tables.
    pub fn element_refs(&self) -> Vec<ElementRef> {
        let mut out = Vec::with_capacity(self.element_count());
        for (ti, table) in self.tables.iter().enumerate() {
            for ai in 0..table.attributes.len() {
                out.push(ElementRef::Attribute {
                    table: ti,
                    attribute: ai,
                });
            }
        }
        for ti in 0..self.tables.len() {
            out.push(ElementRef::Table { table: ti });
        }
        out
    }

    /// Resolves an [`ElementRef`] to a human-readable qualified name like
    /// `ORDERS.ORDER_ID` or `ORDERS` — used in reports and error messages.
    pub fn element_name(&self, r: ElementRef) -> String {
        match r {
            ElementRef::Table { table } => self.tables[table].name.clone(),
            ElementRef::Attribute { table, attribute } => {
                let t = &self.tables[table];
                format!("{}.{}", t.name, t.attributes[attribute].name)
            }
        }
    }
}

/// Schema-local address of an element (an attribute or a table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ElementRef {
    /// The attribute at `attributes[attribute]` of `tables[table]`.
    Attribute {
        /// Index into [`Schema::tables`].
        table: usize,
        /// Index into [`Table::attributes`].
        attribute: usize,
    },
    /// The table at `tables[table]`.
    Table {
        /// Index into [`Schema::tables`].
        table: usize,
    },
}

impl ElementRef {
    /// True if this references a table.
    pub fn is_table(&self) -> bool {
        matches!(self, ElementRef::Table { .. })
    }

    /// True if this references an attribute.
    pub fn is_attribute(&self) -> bool {
        matches!(self, ElementRef::Attribute { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(
            "S1",
            vec![
                Table::new(
                    "CLIENT",
                    vec![
                        Attribute::new("CID", DataType::Integer, Constraint::PrimaryKey),
                        Attribute::plain("NAME", DataType::Varchar(Some(100))),
                        Attribute::plain("ADDRESS", DataType::Varchar(None)),
                        Attribute::plain("PHONE", DataType::Varchar(Some(20))),
                    ],
                ),
                Table::new(
                    "ORDERS",
                    vec![
                        Attribute::new("OID", DataType::Integer, Constraint::PrimaryKey),
                        Attribute::new("CID", DataType::Integer, Constraint::ForeignKey),
                    ],
                ),
            ],
        )
    }

    #[test]
    fn counts() {
        let s = sample_schema();
        assert_eq!(s.table_count(), 2);
        assert_eq!(s.attribute_count(), 6);
        assert_eq!(s.element_count(), 8);
    }

    #[test]
    fn element_order_attributes_then_tables() {
        let s = sample_schema();
        let refs = s.element_refs();
        assert_eq!(refs.len(), 8);
        assert!(refs[..6].iter().all(ElementRef::is_attribute));
        assert!(refs[6..].iter().all(ElementRef::is_table));
        assert_eq!(
            refs[0],
            ElementRef::Attribute {
                table: 0,
                attribute: 0
            }
        );
        assert_eq!(
            refs[4],
            ElementRef::Attribute {
                table: 1,
                attribute: 0
            }
        );
        assert_eq!(refs[6], ElementRef::Table { table: 0 });
    }

    #[test]
    fn element_names() {
        let s = sample_schema();
        assert_eq!(
            s.element_name(ElementRef::Attribute {
                table: 0,
                attribute: 2
            }),
            "CLIENT.ADDRESS"
        );
        assert_eq!(s.element_name(ElementRef::Table { table: 1 }), "ORDERS");
    }

    #[test]
    fn lookups_are_case_insensitive() {
        let s = sample_schema();
        let (idx, t) = s.table("client").unwrap();
        assert_eq!(idx, 0);
        let (aidx, a) = t.attribute("phone").unwrap();
        assert_eq!(aidx, 3);
        assert_eq!(a.name, "PHONE");
        assert!(s.table("NOPE").is_none());
    }

    #[test]
    fn datatype_classification() {
        assert!(DataType::Integer.is_numeric());
        assert!(DataType::Varchar(None).is_textual());
        assert!(DataType::Timestamp.is_temporal());
        assert!(!DataType::Boolean.is_numeric());
        assert_eq!(
            DataType::Other("GEOMETRY".into()).canonical_word(),
            "GEOMETRY"
        );
    }

    #[test]
    fn constraint_words() {
        assert_eq!(Constraint::PrimaryKey.words(), "PRIMARY KEY");
        assert_eq!(Constraint::ForeignKey.words(), "FOREIGN KEY");
        assert_eq!(Constraint::None.words(), "");
        assert_eq!(Constraint::default(), Constraint::None);
    }
}
