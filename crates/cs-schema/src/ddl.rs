//! A small SQL DDL parser.
//!
//! The datasets in `cs-datasets` are stored as plain `CREATE TABLE` scripts
//! (like the paper's artifact repository stores vendor schemas), so this
//! module implements enough of SQL DDL to load them: `CREATE TABLE` with
//! column definitions, inline `PRIMARY KEY` / `REFERENCES` / `NOT NULL` /
//! `DEFAULT` / `AUTO_INCREMENT` clauses, and table-level `PRIMARY KEY (…)`,
//! `FOREIGN KEY (…) REFERENCES …`, `UNIQUE (…)`, and `CONSTRAINT` clauses.
//! Comments (`--` and `/* */`) and quoted identifiers are handled.
//!
//! The parser is a hand-written tokenizer + recursive descent over the
//! token stream; errors carry the offending line.

use crate::model::{Attribute, Constraint, DataType, Schema, Table};

/// Error from [`parse_schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DdlError {
    /// 1-based line where the error was detected.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for DdlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DDL error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for DdlError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(String),
    StrLit(String),
    LParen,
    RParen,
    Comma,
    Semi,
    Dot,
    Other(char),
}

#[derive(Debug, Clone)]
struct Spanned {
    tok: Tok,
    line: usize,
}

fn tokenize(input: &str) -> Result<Vec<Spanned>, DdlError> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                if chars.peek() == Some(&'-') {
                    // line comment
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(Spanned {
                        tok: Tok::Other('-'),
                        line,
                    });
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'*') {
                    chars.next();
                    let mut prev = ' ';
                    loop {
                        match chars.next() {
                            Some('\n') => {
                                line += 1;
                                prev = '\n';
                            }
                            Some('/') if prev == '*' => break,
                            Some(c) => prev = c,
                            None => {
                                return Err(DdlError {
                                    line,
                                    message: "unterminated block comment".into(),
                                })
                            }
                        }
                    }
                } else {
                    out.push(Spanned {
                        tok: Tok::Other('/'),
                        line,
                    });
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('\'') => break,
                        Some('\n') => {
                            line += 1;
                            s.push('\n');
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(DdlError {
                                line,
                                message: "unterminated string".into(),
                            })
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::StrLit(s),
                    line,
                });
            }
            '"' | '`' | '[' => {
                let close = match c {
                    '"' => '"',
                    '`' => '`',
                    _ => ']',
                };
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(c) if c == close => break,
                        Some('\n') => {
                            return Err(DdlError {
                                line,
                                message: "newline in quoted identifier".into(),
                            })
                        }
                        Some(c) => s.push(c),
                        None => {
                            return Err(DdlError {
                                line,
                                message: "unterminated quoted identifier".into(),
                            })
                        }
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            '(' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::LParen,
                    line,
                });
            }
            ')' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::RParen,
                    line,
                });
            }
            ',' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::Comma,
                    line,
                });
            }
            ';' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::Semi,
                    line,
                });
            }
            '.' => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::Dot,
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Number(s),
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' || c == '$' || c == '#' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '$' || d == '#' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            other => {
                chars.next();
                out.push(Spanned {
                    tok: Tok::Other(other),
                    line,
                });
            }
        }
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> DdlError {
        DdlError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String, DdlError> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect(&mut self, tok: Tok) -> Result<(), DdlError> {
        match self.next() {
            Some(t) if t == tok => Ok(()),
            other => Err(self.err(format!("expected {tok:?}, found {other:?}"))),
        }
    }

    /// Skips to (and past) the matching closing parenthesis; assumes the
    /// opening one was already consumed.
    fn skip_parens(&mut self) -> Result<(), DdlError> {
        let mut depth = 1usize;
        loop {
            match self.next() {
                Some(Tok::LParen) => depth += 1,
                Some(Tok::RParen) => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.err("unbalanced parentheses")),
            }
        }
    }

    /// Skips tokens until the next top-level comma or the closing paren of
    /// the column list (which is not consumed).
    fn skip_to_column_end(&mut self) -> Result<(), DdlError> {
        loop {
            match self.peek() {
                Some(Tok::Comma) | Some(Tok::RParen) | None => return Ok(()),
                Some(Tok::LParen) => {
                    self.next();
                    self.skip_parens()?;
                }
                _ => {
                    self.next();
                }
            }
        }
    }
}

/// Parses a possibly qualified name (`schema.table`) and returns the last
/// segment.
fn parse_qualified_name(p: &mut Parser) -> Result<String, DdlError> {
    let mut name = p.expect_ident()?;
    while matches!(p.peek(), Some(Tok::Dot)) {
        p.next();
        name = p.expect_ident()?;
    }
    Ok(name)
}

fn map_data_type(name: &str, args: &[String]) -> DataType {
    let upper = name.to_ascii_uppercase();
    match upper.as_str() {
        "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" | "MEDIUMINT" | "SERIAL" => {
            DataType::Integer
        }
        "NUMBER" | "NUMERIC" | "DECIMAL" | "DEC" => {
            // Oracle NUMBER without scale (or scale 0) is an integer family.
            match args {
                [] => DataType::Integer,
                [_p] => DataType::Integer,
                [_p, s] if s == "0" => DataType::Integer,
                _ => DataType::Decimal,
            }
        }
        "FLOAT" | "DOUBLE" | "REAL" | "BINARY_DOUBLE" | "BINARY_FLOAT" => DataType::Float,
        "VARCHAR" | "VARCHAR2" | "NVARCHAR" | "NVARCHAR2" | "CHARACTER" => {
            DataType::Varchar(args.first().and_then(|a| a.parse().ok()))
        }
        "CHAR" | "NCHAR" => DataType::Char(args.first().and_then(|a| a.parse().ok())),
        "TEXT" | "CLOB" | "NCLOB" | "LONGTEXT" | "MEDIUMTEXT" | "TINYTEXT" => DataType::Text,
        "DATE" => DataType::Date,
        "DATETIME" => DataType::DateTime,
        "TIMESTAMP" => DataType::Timestamp,
        "TIME" => DataType::Time,
        "BOOLEAN" | "BOOL" | "BIT" => DataType::Boolean,
        "BLOB" | "LONGBLOB" | "MEDIUMBLOB" | "VARBINARY" | "BINARY" | "RAW" | "BYTEA" => {
            DataType::Blob
        }
        _ => DataType::Other(upper),
    }
}

fn parse_column(p: &mut Parser) -> Result<Attribute, DdlError> {
    let name = p.expect_ident()?;
    let type_name = p.expect_ident()?;
    // Optional type arguments: (10), (10, 2), (10 CHAR)…
    let mut args = Vec::new();
    if matches!(p.peek(), Some(Tok::LParen)) {
        p.next();
        loop {
            match p.next() {
                Some(Tok::Number(n)) => args.push(n),
                Some(Tok::Ident(_)) => {} // e.g. `10 CHAR`, `MAX`
                Some(Tok::Comma) => {}
                Some(Tok::RParen) => break,
                other => return Err(p.err(format!("unexpected token in type args: {other:?}"))),
            }
        }
    }
    // Multi-word types: `DOUBLE PRECISION`, `TIMESTAMP WITH TIME ZONE`…
    // handled by ignoring trailing modifiers below.
    let mut constraint = Constraint::None;
    loop {
        match p.peek() {
            Some(Tok::Comma) | Some(Tok::RParen) | None => break,
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("PRIMARY") => {
                p.next();
                if !p.eat_keyword("KEY") {
                    return Err(p.err("expected KEY after PRIMARY"));
                }
                constraint = Constraint::PrimaryKey;
            }
            Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("REFERENCES") => {
                p.next();
                parse_qualified_name(p)?;
                if matches!(p.peek(), Some(Tok::LParen)) {
                    p.next();
                    p.skip_parens()?;
                }
                if constraint == Constraint::None {
                    constraint = Constraint::ForeignKey;
                }
            }
            Some(Tok::LParen) => {
                p.next();
                p.skip_parens()?;
            }
            _ => {
                p.next();
            }
        }
    }
    Ok(Attribute::new(
        name,
        map_data_type(&type_name, &args),
        constraint,
    ))
}

/// Names listed in a parenthesized column list: `(A, B, C)`.
fn parse_name_list(p: &mut Parser) -> Result<Vec<String>, DdlError> {
    p.expect(Tok::LParen)?;
    let mut names = Vec::new();
    loop {
        match p.next() {
            Some(Tok::Ident(s)) => names.push(s),
            other => return Err(p.err(format!("expected column name, found {other:?}"))),
        }
        match p.next() {
            Some(Tok::Comma) => continue,
            Some(Tok::RParen) => break,
            other => return Err(p.err(format!("expected , or ), found {other:?}"))),
        }
    }
    Ok(names)
}

/// Table-level constraint effects applied after all columns are parsed.
#[derive(Default)]
struct PendingConstraints {
    primary: Vec<String>,
    foreign: Vec<String>,
}

fn parse_table_constraint(
    p: &mut Parser,
    pending: &mut PendingConstraints,
) -> Result<(), DdlError> {
    if p.eat_keyword("CONSTRAINT") {
        let _name = p.expect_ident()?;
    }
    if p.eat_keyword("PRIMARY") {
        if !p.eat_keyword("KEY") {
            return Err(p.err("expected KEY after PRIMARY"));
        }
        pending.primary.extend(parse_name_list(p)?);
        p.skip_to_column_end()?;
        return Ok(());
    }
    if p.eat_keyword("FOREIGN") {
        if !p.eat_keyword("KEY") {
            return Err(p.err("expected KEY after FOREIGN"));
        }
        pending.foreign.extend(parse_name_list(p)?);
        // REFERENCES table (cols) [ON DELETE …]
        p.skip_to_column_end()?;
        return Ok(());
    }
    // UNIQUE, CHECK, INDEX, KEY … — skip entirely.
    p.skip_to_column_end()
}

/// Parses a full DDL script into a [`Schema`] with the given name.
///
/// Statements other than `CREATE TABLE` (e.g. `CREATE INDEX`, `INSERT`,
/// `DROP`) are skipped.
pub fn parse_schema(name: &str, ddl: &str) -> Result<Schema, DdlError> {
    let toks = tokenize(ddl)?;
    let mut p = Parser { toks, pos: 0 };
    let mut tables = Vec::new();

    while p.peek().is_some() {
        if !p.peek_keyword("CREATE") {
            // Skip one statement.
            while let Some(t) = p.next() {
                if t == Tok::Semi {
                    break;
                }
                if t == Tok::LParen {
                    p.skip_parens()?;
                }
            }
            continue;
        }
        p.next(); // CREATE
        if !p.eat_keyword("TABLE") {
            // CREATE INDEX / VIEW / …: skip statement.
            while let Some(t) = p.next() {
                if t == Tok::Semi {
                    break;
                }
                if t == Tok::LParen {
                    p.skip_parens()?;
                }
            }
            continue;
        }
        if p.eat_keyword("IF") {
            p.eat_keyword("NOT");
            p.eat_keyword("EXISTS");
        }
        let table_name = parse_qualified_name(&mut p)?;
        p.expect(Tok::LParen)?;

        let mut attributes: Vec<Attribute> = Vec::new();
        let mut pending = PendingConstraints::default();
        loop {
            let is_constraint = matches!(p.peek(), Some(Tok::Ident(s)) if {
                let u = s.to_ascii_uppercase();
                matches!(u.as_str(), "PRIMARY" | "FOREIGN" | "CONSTRAINT" | "UNIQUE" | "CHECK" | "INDEX" | "KEY" | "FULLTEXT")
            });
            if is_constraint {
                parse_table_constraint(&mut p, &mut pending)?;
            } else {
                attributes.push(parse_column(&mut p)?);
            }
            match p.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                other => {
                    return Err(p.err(format!("expected , or ) in column list, found {other:?}")))
                }
            }
        }
        // Trailing table options (ENGINE=…, TABLESPACE …) up to `;`.
        while let Some(t) = p.peek() {
            if *t == Tok::Semi {
                p.next();
                break;
            }
            if *t == Tok::LParen {
                p.next();
                p.skip_parens()?;
            } else {
                p.next();
            }
        }

        // Apply table-level key constraints to columns.
        for a in &mut attributes {
            if pending
                .primary
                .iter()
                .any(|n| n.eq_ignore_ascii_case(&a.name))
            {
                a.constraint = Constraint::PrimaryKey;
            } else if pending
                .foreign
                .iter()
                .any(|n| n.eq_ignore_ascii_case(&a.name))
                && a.constraint == Constraint::None
            {
                a.constraint = Constraint::ForeignKey;
            }
        }
        tables.push(Table::new(table_name, attributes));
    }

    Ok(Schema::new(name, tables))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_table() {
        let schema = parse_schema(
            "S",
            "CREATE TABLE client (cid INT PRIMARY KEY, name VARCHAR(100), address VARCHAR(255));",
        )
        .unwrap();
        assert_eq!(schema.table_count(), 1);
        let t = &schema.tables[0];
        assert_eq!(t.name, "client");
        assert_eq!(t.attributes.len(), 3);
        assert_eq!(t.attributes[0].constraint, Constraint::PrimaryKey);
        assert_eq!(t.attributes[1].data_type, DataType::Varchar(Some(100)));
    }

    #[test]
    fn parses_inline_references_as_fk() {
        let schema = parse_schema(
            "S",
            "CREATE TABLE orders (oid INT PRIMARY KEY, cid INT REFERENCES client(cid));",
        )
        .unwrap();
        assert_eq!(
            schema.tables[0].attributes[1].constraint,
            Constraint::ForeignKey
        );
    }

    #[test]
    fn parses_table_level_keys() {
        let ddl = "
            CREATE TABLE order_items (
                order_id INT NOT NULL,
                item_id INT NOT NULL,
                product_id INT,
                quantity DECIMAL(10,2),
                PRIMARY KEY (order_id, item_id),
                FOREIGN KEY (product_id) REFERENCES products(id) ON DELETE CASCADE
            );";
        let schema = parse_schema("S", ddl).unwrap();
        let t = &schema.tables[0];
        assert_eq!(t.attributes[0].constraint, Constraint::PrimaryKey);
        assert_eq!(t.attributes[1].constraint, Constraint::PrimaryKey);
        assert_eq!(t.attributes[2].constraint, Constraint::ForeignKey);
        assert_eq!(t.attributes[3].constraint, Constraint::None);
        assert_eq!(t.attributes[3].data_type, DataType::Decimal);
    }

    #[test]
    fn oracle_number_mapping() {
        let schema = parse_schema(
            "S",
            "CREATE TABLE t (a NUMBER, b NUMBER(10), c NUMBER(10,0), d NUMBER(10,2));",
        )
        .unwrap();
        let attrs = &schema.tables[0].attributes;
        assert_eq!(attrs[0].data_type, DataType::Integer);
        assert_eq!(attrs[1].data_type, DataType::Integer);
        assert_eq!(attrs[2].data_type, DataType::Integer);
        assert_eq!(attrs[3].data_type, DataType::Decimal);
    }

    #[test]
    fn comments_and_quoting() {
        let ddl = "
            -- header comment
            /* block
               comment */
            CREATE TABLE \"Quoted Table\" (
                `col one` INT, -- trailing
                [col2] VARCHAR2(30 CHAR)
            );";
        let schema = parse_schema("S", ddl).unwrap();
        let t = &schema.tables[0];
        assert_eq!(t.name, "Quoted Table");
        assert_eq!(t.attributes[0].name, "col one");
        assert_eq!(t.attributes[1].data_type, DataType::Varchar(Some(30)));
    }

    #[test]
    fn skips_non_table_statements() {
        let ddl = "
            DROP TABLE IF EXISTS t;
            CREATE INDEX idx ON t(a);
            CREATE TABLE t (a INT);
            INSERT INTO t VALUES (1);
        ";
        let schema = parse_schema("S", ddl).unwrap();
        assert_eq!(schema.table_count(), 1);
        assert_eq!(schema.tables[0].attributes.len(), 1);
    }

    #[test]
    fn qualified_table_names() {
        let schema = parse_schema("S", "CREATE TABLE co.orders (id INT);").unwrap();
        assert_eq!(schema.tables[0].name, "orders");
    }

    #[test]
    fn multiple_tables_and_types() {
        let ddl = "
            CREATE TABLE a (x DATE, y DATETIME, z TIMESTAMP, w TIME);
            CREATE TABLE b (x TEXT, y BLOB, z BOOLEAN, v FLOAT, u GEOMETRY);
        ";
        let schema = parse_schema("S", ddl).unwrap();
        assert_eq!(schema.table_count(), 2);
        let a = &schema.tables[0].attributes;
        assert_eq!(a[0].data_type, DataType::Date);
        assert_eq!(a[1].data_type, DataType::DateTime);
        assert_eq!(a[2].data_type, DataType::Timestamp);
        assert_eq!(a[3].data_type, DataType::Time);
        let b = &schema.tables[1].attributes;
        assert_eq!(b[0].data_type, DataType::Text);
        assert_eq!(b[1].data_type, DataType::Blob);
        assert_eq!(b[2].data_type, DataType::Boolean);
        assert_eq!(b[3].data_type, DataType::Float);
        assert_eq!(b[4].data_type, DataType::Other("GEOMETRY".into()));
    }

    #[test]
    fn mysql_table_options_and_defaults() {
        let ddl = "
            CREATE TABLE IF NOT EXISTS products (
                id INT AUTO_INCREMENT PRIMARY KEY,
                name VARCHAR(70) NOT NULL DEFAULT 'unknown',
                price DECIMAL(10,2) DEFAULT 0.0,
                UNIQUE (name)
            ) ENGINE=InnoDB DEFAULT CHARSET=utf8;
        ";
        let schema = parse_schema("S", ddl).unwrap();
        let t = &schema.tables[0];
        assert_eq!(t.attributes.len(), 3);
        assert_eq!(t.attributes[0].constraint, Constraint::PrimaryKey);
    }

    #[test]
    fn error_reports_line() {
        let err = parse_schema("S", "CREATE TABLE t (\n  a INT,\n  ,\n);").unwrap_err();
        assert!(err.line >= 3, "line was {}", err.line);
    }

    #[test]
    fn unterminated_comment_errors() {
        assert!(parse_schema("S", "/* nope").is_err());
    }

    #[test]
    fn constraint_clause_named_fk() {
        let ddl = "
            CREATE TABLE t (
                a INT,
                b INT,
                CONSTRAINT fk_b FOREIGN KEY (b) REFERENCES other(b)
            );";
        let schema = parse_schema("S", ddl).unwrap();
        assert_eq!(
            schema.tables[0].attributes[1].constraint,
            Constraint::ForeignKey
        );
    }

    #[test]
    fn empty_input_gives_empty_schema() {
        let schema = parse_schema("S", "   -- nothing here\n").unwrap();
        assert_eq!(schema.table_count(), 0);
        assert_eq!(schema.element_count(), 0);
    }
}
