//! Multi-schema catalog with a stable global element enumeration.
//!
//! Every numeric artifact in the workspace (signature matrices, outlier
//! scores, streamlined keep-sets) is indexed by the order this catalog
//! assigns: schemas in insertion order, elements within a schema in the
//! canonical order of [`Schema::element_refs`] (attributes first, then
//! tables). [`ElementId`] is a global handle valid for one catalog.

use crate::model::{ElementRef, Schema};

/// Global element handle: `(schema index, element index within schema)`.
///
/// `element` indexes into the canonical per-schema enumeration, *not* into
/// any table's attribute list; resolve it through [`Catalog::info`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementId {
    /// Index of the schema in the catalog.
    pub schema: usize,
    /// Index of the element within that schema's canonical enumeration.
    pub element: usize,
}

impl ElementId {
    /// Convenience constructor.
    pub fn new(schema: usize, element: usize) -> Self {
        Self { schema, element }
    }
}

/// Resolved view of one element: where it lives and what it is.
#[derive(Debug, Clone, PartialEq)]
pub struct ElementInfo {
    /// Global handle.
    pub id: ElementId,
    /// Schema-local address.
    pub element: ElementRef,
    /// Qualified display name (`SCHEMA.TABLE.ATTR` or `SCHEMA.TABLE`).
    pub qualified_name: String,
}

/// An ordered collection of schemas to be matched together — the paper's
/// `S = (S_1, …, S_k)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    schemas: Vec<Schema>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a catalog from schemas in matching order.
    pub fn from_schemas(schemas: Vec<Schema>) -> Self {
        Self { schemas }
    }

    /// Appends a schema and returns its index.
    pub fn push(&mut self, schema: Schema) -> usize {
        self.schemas.push(schema);
        self.schemas.len() - 1
    }

    /// The schemas, in order.
    pub fn schemas(&self) -> &[Schema] {
        &self.schemas
    }

    /// Number of schemas.
    pub fn schema_count(&self) -> usize {
        self.schemas.len()
    }

    /// Borrow a schema by index.
    pub fn schema(&self, idx: usize) -> &Schema {
        &self.schemas[idx]
    }

    /// Finds a schema index by case-insensitive name.
    pub fn schema_by_name(&self, name: &str) -> Option<usize> {
        self.schemas
            .iter()
            .position(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Total element count across all schemas — `|S|` in the paper.
    pub fn element_count(&self) -> usize {
        self.schemas.iter().map(Schema::element_count).sum()
    }

    /// Element ids of one schema, in canonical order.
    pub fn schema_element_ids(&self, schema: usize) -> Vec<ElementId> {
        (0..self.schemas[schema].element_count())
            .map(|e| ElementId::new(schema, e))
            .collect()
    }

    /// Every element id in the catalog, schema by schema.
    pub fn all_element_ids(&self) -> Vec<ElementId> {
        (0..self.schemas.len())
            .flat_map(|s| self.schema_element_ids(s))
            .collect()
    }

    /// Resolves an element id to its schema-local address.
    ///
    /// # Panics
    /// If the id does not belong to this catalog.
    pub fn element_ref(&self, id: ElementId) -> ElementRef {
        let refs = self.schemas[id.schema].element_refs();
        refs[id.element]
    }

    /// Full resolved info for an element id.
    pub fn info(&self, id: ElementId) -> ElementInfo {
        let schema = &self.schemas[id.schema];
        let element = self.element_ref(id);
        ElementInfo {
            id,
            element,
            qualified_name: format!("{}.{}", schema.name, schema.element_name(element)),
        }
    }

    /// Looks up the id of a table element by names.
    pub fn table_id(&self, schema_name: &str, table_name: &str) -> Option<ElementId> {
        let si = self.schema_by_name(schema_name)?;
        let schema = &self.schemas[si];
        let (ti, _) = schema.table(table_name)?;
        let offset = schema.attribute_count();
        // Tables come after all attributes in the canonical order, in table order.
        Some(ElementId::new(si, offset + ti))
    }

    /// Looks up the id of an attribute element by names.
    pub fn attribute_id(
        &self,
        schema_name: &str,
        table_name: &str,
        attr_name: &str,
    ) -> Option<ElementId> {
        let si = self.schema_by_name(schema_name)?;
        let schema = &self.schemas[si];
        let (ti, table) = schema.table(table_name)?;
        let (ai, _) = table.attribute(attr_name)?;
        // Attributes are enumerated grouped by table, declaration order.
        let offset: usize = schema
            .tables
            .iter()
            .take(ti)
            .map(|t| t.attributes.len())
            .sum();
        Some(ElementId::new(si, offset + ai))
    }

    /// The Cartesian-product size of pairwise **table** comparisons across
    /// all schema pairs (Table 3, "Cartesian Product Table").
    pub fn cartesian_table_pairs(&self) -> usize {
        self.cartesian_pairs(|s| s.table_count())
    }

    /// The Cartesian-product size of pairwise **attribute** comparisons
    /// across all schema pairs (Table 3, "Cartesian Product Attr.").
    pub fn cartesian_attribute_pairs(&self) -> usize {
        self.cartesian_pairs(|s| s.attribute_count())
    }

    /// Total pairwise element comparisons (tables + attributes).
    pub fn cartesian_element_pairs(&self) -> usize {
        self.cartesian_table_pairs() + self.cartesian_attribute_pairs()
    }

    fn cartesian_pairs(&self, count: impl Fn(&Schema) -> usize) -> usize {
        let counts: Vec<usize> = self.schemas.iter().map(count).collect();
        let mut total = 0;
        for i in 0..counts.len() {
            for j in (i + 1)..counts.len() {
                total += counts[i] * counts[j];
            }
        }
        total
    }

    /// Builds a new catalog containing only the elements in `keep`
    /// (streamlined schemas `S'`). Tables are retained if the table element
    /// itself is kept **or** any of its attributes is kept; attributes are
    /// retained only if kept. Empty schemas stay in place so indices remain
    /// aligned with the original catalog.
    pub fn project(&self, keep: &std::collections::HashSet<ElementId>) -> Catalog {
        let mut schemas = Vec::with_capacity(self.schemas.len());
        for (si, schema) in self.schemas.iter().enumerate() {
            let refs = schema.element_refs();
            let kept: std::collections::HashSet<ElementRef> = refs
                .iter()
                .enumerate()
                .filter(|(ei, _)| keep.contains(&ElementId::new(si, *ei)))
                .map(|(_, r)| *r)
                .collect();
            let mut tables = Vec::new();
            for (ti, table) in schema.tables.iter().enumerate() {
                let attrs: Vec<_> = table
                    .attributes
                    .iter()
                    .enumerate()
                    .filter(|(ai, _)| {
                        kept.contains(&ElementRef::Attribute {
                            table: ti,
                            attribute: *ai,
                        })
                    })
                    .map(|(_, a)| a.clone())
                    .collect();
                let table_kept = kept.contains(&ElementRef::Table { table: ti });
                if table_kept || !attrs.is_empty() {
                    tables.push(crate::model::Table::new(table.name.clone(), attrs));
                }
            }
            schemas.push(Schema::new(schema.name.clone(), tables));
        }
        Catalog::from_schemas(schemas)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, Constraint, DataType, Table};
    use std::collections::HashSet;

    fn two_schema_catalog() -> Catalog {
        let s1 = Schema::new(
            "S1",
            vec![Table::new(
                "CLIENT",
                vec![
                    Attribute::new("CID", DataType::Integer, Constraint::PrimaryKey),
                    Attribute::plain("NAME", DataType::Varchar(None)),
                ],
            )],
        );
        let s2 = Schema::new(
            "S2",
            vec![
                Table::new(
                    "CUSTOMER",
                    vec![
                        Attribute::new("ID", DataType::Integer, Constraint::PrimaryKey),
                        Attribute::plain("FIRST_NAME", DataType::Varchar(None)),
                        Attribute::plain("LAST_NAME", DataType::Varchar(None)),
                    ],
                ),
                Table::new(
                    "SHIPMENTS",
                    vec![Attribute::plain("DELIVERY_TIME", DataType::DateTime)],
                ),
            ],
        );
        Catalog::from_schemas(vec![s1, s2])
    }

    #[test]
    fn counts_and_enumeration() {
        let c = two_schema_catalog();
        assert_eq!(c.schema_count(), 2);
        assert_eq!(c.element_count(), 3 + 6);
        assert_eq!(c.all_element_ids().len(), 9);
        assert_eq!(c.schema_element_ids(0).len(), 3);
    }

    #[test]
    fn table_and_attribute_ids_resolve() {
        let c = two_schema_catalog();
        let t = c.table_id("S2", "SHIPMENTS").unwrap();
        assert!(c.element_ref(t).is_table());
        assert_eq!(c.info(t).qualified_name, "S2.SHIPMENTS");

        let a = c.attribute_id("S2", "CUSTOMER", "LAST_NAME").unwrap();
        assert!(c.element_ref(a).is_attribute());
        assert_eq!(c.info(a).qualified_name, "S2.CUSTOMER.LAST_NAME");
        // Attribute ids are schema-canonical: CUSTOMER has 3 attrs, index 2.
        assert_eq!(a.element, 2);

        // SHIPMENTS.DELIVERY_TIME comes after CUSTOMER's attributes.
        let d = c.attribute_id("S2", "SHIPMENTS", "DELIVERY_TIME").unwrap();
        assert_eq!(d.element, 3);
        // Tables come after all 4 attributes.
        let cust = c.table_id("S2", "CUSTOMER").unwrap();
        assert_eq!(cust.element, 4);
    }

    #[test]
    fn missing_lookups_return_none() {
        let c = two_schema_catalog();
        assert!(c.table_id("S9", "CLIENT").is_none());
        assert!(c.table_id("S1", "NOPE").is_none());
        assert!(c.attribute_id("S1", "CLIENT", "NOPE").is_none());
    }

    #[test]
    fn cartesian_sizes() {
        let c = two_schema_catalog();
        // tables: 1×2; attrs: 2×4.
        assert_eq!(c.cartesian_table_pairs(), 2);
        assert_eq!(c.cartesian_attribute_pairs(), 8);
        assert_eq!(c.cartesian_element_pairs(), 10);
    }

    #[test]
    fn cartesian_with_three_schemas() {
        let mut c = two_schema_catalog();
        c.push(Schema::new(
            "S3",
            vec![Table::new(
                "X",
                vec![Attribute::plain("A", DataType::Integer)],
            )],
        ));
        // tables 1,2,1 → 1·2 + 1·1 + 2·1 = 5.
        assert_eq!(c.cartesian_table_pairs(), 5);
    }

    #[test]
    fn project_keeps_selected_elements() {
        let c = two_schema_catalog();
        let keep: HashSet<ElementId> = [
            c.attribute_id("S1", "CLIENT", "NAME").unwrap(),
            c.attribute_id("S2", "CUSTOMER", "FIRST_NAME").unwrap(),
            c.table_id("S2", "CUSTOMER").unwrap(),
        ]
        .into_iter()
        .collect();
        let p = c.project(&keep);
        assert_eq!(p.schema_count(), 2);
        // CLIENT retained because one attribute was kept.
        assert_eq!(p.schema(0).table_count(), 1);
        assert_eq!(p.schema(0).attribute_count(), 1);
        // SHIPMENTS fully dropped.
        assert_eq!(p.schema(1).table_count(), 1);
        assert_eq!(p.schema(1).tables[0].attributes.len(), 1);
        assert_eq!(p.element_count(), 4);
    }

    #[test]
    fn project_empty_keep_gives_empty_schemas() {
        let c = two_schema_catalog();
        let p = c.project(&HashSet::new());
        assert_eq!(p.schema_count(), 2);
        assert_eq!(p.element_count(), 0);
    }

    #[test]
    fn project_kept_table_without_attributes_survives() {
        let c = two_schema_catalog();
        let keep: HashSet<ElementId> = [c.table_id("S1", "CLIENT").unwrap()].into_iter().collect();
        let p = c.project(&keep);
        assert_eq!(p.schema(0).table_count(), 1);
        assert_eq!(p.schema(0).attribute_count(), 0);
    }
}
