//! Ground-truth linkages and linkability labels.
//!
//! Implements the paper's Section 2.1: the inter-linkage set `L(S)` over a
//! catalog, the binary **linkability** label it induces on every element
//! (Definition 1), and the **unlinkable overhead** statistic
//! `(|S| − |S'|)/|S'|`.

use crate::catalog::{Catalog, ElementId};
use std::collections::{BTreeSet, HashSet};

/// Linkage type taxonomy from Section 2.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkageKind {
    /// One-to-one identical semantics (e.g. `NAME ≅ CNAME`).
    InterIdentical,
    /// Partial / one-to-many semantics (e.g. `ADDRESS ⊐ CITY`,
    /// `FIRST_NAME + LAST_NAME ≅ NAME`), including sub-typed table pairs.
    InterSubTyped,
}

/// One annotated linkage between elements of two *different* schemas.
///
/// Pairs are symmetric; [`LinkagePair::new`] normalizes the order so the
/// smaller [`ElementId`] comes first, making pairs hashable set members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkagePair {
    /// Lexicographically smaller endpoint.
    pub a: ElementId,
    /// Lexicographically larger endpoint.
    pub b: ElementId,
    /// Linkage type.
    pub kind: LinkageKind,
}

impl LinkagePair {
    /// Creates a normalized pair.
    ///
    /// # Panics
    /// If both endpoints belong to the same schema — `L(S)` is defined over
    /// *inter*-schema correspondences only (`k ≠ m`).
    pub fn new(a: ElementId, b: ElementId, kind: LinkageKind) -> Self {
        assert_ne!(a.schema, b.schema, "linkages connect different schemas");
        if a <= b {
            Self { a, b, kind }
        } else {
            Self { a: b, b: a, kind }
        }
    }

    /// True if `id` is one of the endpoints.
    pub fn touches(&self, id: ElementId) -> bool {
        self.a == id || self.b == id
    }

    /// True if the pair connects the two given schemas (in either order).
    pub fn connects(&self, schema_x: usize, schema_y: usize) -> bool {
        (self.a.schema == schema_x && self.b.schema == schema_y)
            || (self.a.schema == schema_y && self.b.schema == schema_x)
    }
}

/// The annotated ground-truth linkage set `L(S)` for a catalog.
///
/// Pairs live in a `BTreeSet` so every iteration order — including the
/// public [`LinkageSet::iter`] feeding Table 2/3 emitters downstream — is
/// deterministic (DESIGN.md §8), not hasher-dependent.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkageSet {
    pairs: BTreeSet<LinkagePair>,
}

impl LinkageSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a set from pairs (normalizing and deduplicating).
    pub fn from_pairs(pairs: impl IntoIterator<Item = LinkagePair>) -> Self {
        Self {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Inserts a pair; returns false if it was already present.
    pub fn insert(&mut self, pair: LinkagePair) -> bool {
        self.pairs.insert(pair)
    }

    /// Number of annotated pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if no pairs are annotated.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterator over the pairs.
    pub fn iter(&self) -> impl Iterator<Item = &LinkagePair> {
        self.pairs.iter()
    }

    /// True if the (unordered) element pair is annotated, regardless of kind.
    pub fn contains_pair(&self, x: ElementId, y: ElementId) -> bool {
        if x.schema == y.schema {
            return false;
        }
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        self.pairs.contains(&LinkagePair {
            a,
            b,
            kind: LinkageKind::InterIdentical,
        }) || self.pairs.contains(&LinkagePair {
            a,
            b,
            kind: LinkageKind::InterSubTyped,
        })
    }

    /// The set of linkable elements (Definition 1): every element occurring
    /// in at least one pair.
    pub fn linkable_elements(&self) -> HashSet<ElementId> {
        let mut set = HashSet::with_capacity(self.pairs.len() * 2);
        // Iterating the BTreeSet of pairs: insertion into the membership
        // set is order-insensitive.
        for p in &self.pairs {
            set.insert(p.a);
            set.insert(p.b);
        }
        set
    }

    /// True if the element occurs in any pair.
    pub fn is_linkable(&self, id: ElementId) -> bool {
        self.pairs.iter().any(|p| p.touches(id))
    }

    /// Linkability labels for every element of the catalog, in global
    /// enumeration order (the label vector scoping is evaluated against).
    pub fn labels(&self, catalog: &Catalog) -> Vec<bool> {
        let linkable = self.linkable_elements();
        catalog
            .all_element_ids()
            .into_iter()
            .map(|id| linkable.contains(&id))
            .collect()
    }

    /// Count of pairs by kind.
    pub fn count_kind(&self, kind: LinkageKind) -> usize {
        self.pairs.iter().filter(|p| p.kind == kind).count()
    }

    /// Count of pairs of a kind connecting two specific schemas.
    pub fn count_between(&self, schema_x: usize, schema_y: usize, kind: LinkageKind) -> usize {
        self.pairs
            .iter()
            .filter(|p| p.kind == kind && p.connects(schema_x, schema_y))
            .count()
    }

    /// Per-schema linkable element counts (Table 2's "Linkable" column).
    pub fn linkable_per_schema(&self, catalog: &Catalog) -> Vec<usize> {
        let linkable = self.linkable_elements();
        (0..catalog.schema_count())
            .map(|s| {
                catalog
                    .schema_element_ids(s)
                    .into_iter()
                    .filter(|id| linkable.contains(id))
                    .count()
            })
            .collect()
    }

    /// The paper's unlinkable-overhead statistic `(|S| − |S'|)/|S'|`,
    /// where `|S'|` is the number of linkable elements. Returns `None`
    /// when nothing is linkable (division by zero).
    pub fn unlinkable_overhead(&self, catalog: &Catalog) -> Option<f64> {
        let total = catalog.element_count();
        let linkable = self.linkable_elements().len();
        (linkable > 0).then(|| (total - linkable) as f64 / linkable as f64)
    }

    /// Restricts the set to pairs whose *both* endpoints survive in `keep`
    /// — used to quantify what pruning destroys.
    pub fn restricted_to(&self, keep: &HashSet<ElementId>) -> LinkageSet {
        LinkageSet {
            pairs: self
                .pairs
                .iter()
                .filter(|p| keep.contains(&p.a) && keep.contains(&p.b))
                .copied()
                .collect(),
        }
    }
}

impl<'a> IntoIterator for &'a LinkageSet {
    type Item = &'a LinkagePair;
    type IntoIter = std::collections::btree_set::Iter<'a, LinkagePair>;

    fn into_iter(self) -> Self::IntoIter {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, DataType, Schema, Table};

    fn catalog() -> Catalog {
        let make = |schema: &str, table: &str, attrs: &[&str]| {
            Schema::new(
                schema,
                vec![Table::new(
                    table,
                    attrs
                        .iter()
                        .map(|a| Attribute::plain(*a, DataType::Varchar(None)))
                        .collect(),
                )],
            )
        };
        Catalog::from_schemas(vec![
            make("S1", "CLIENT", &["CID", "NAME", "ADDRESS"]),
            make("S2", "CUSTOMER", &["ID", "FIRST_NAME", "LAST_NAME", "DOB"]),
            make("S3", "CAR", &["CAR_ID", "CNAME"]),
        ])
    }

    fn id(c: &Catalog, s: &str, t: &str, a: &str) -> ElementId {
        c.attribute_id(s, t, a).unwrap()
    }

    #[test]
    fn pair_normalization_and_symmetry() {
        let c = catalog();
        let x = id(&c, "S1", "CLIENT", "NAME");
        let y = id(&c, "S2", "CUSTOMER", "FIRST_NAME");
        let p1 = LinkagePair::new(x, y, LinkageKind::InterSubTyped);
        let p2 = LinkagePair::new(y, x, LinkageKind::InterSubTyped);
        assert_eq!(p1, p2);
        let set = LinkageSet::from_pairs([p1, p2]);
        assert_eq!(set.len(), 1);
        assert!(set.contains_pair(y, x));
    }

    #[test]
    #[should_panic(expected = "different schemas")]
    fn intra_schema_pair_panics() {
        let c = catalog();
        let x = id(&c, "S1", "CLIENT", "NAME");
        let y = id(&c, "S1", "CLIENT", "CID");
        LinkagePair::new(x, y, LinkageKind::InterIdentical);
    }

    #[test]
    fn linkability_labels() {
        let c = catalog();
        let mut set = LinkageSet::new();
        set.insert(LinkagePair::new(
            id(&c, "S1", "CLIENT", "NAME"),
            id(&c, "S2", "CUSTOMER", "FIRST_NAME"),
            LinkageKind::InterSubTyped,
        ));
        set.insert(LinkagePair::new(
            c.table_id("S1", "CLIENT").unwrap(),
            c.table_id("S2", "CUSTOMER").unwrap(),
            LinkageKind::InterSubTyped,
        ));
        assert!(set.is_linkable(id(&c, "S1", "CLIENT", "NAME")));
        assert!(!set.is_linkable(id(&c, "S2", "CUSTOMER", "DOB")));
        let labels = set.labels(&c);
        assert_eq!(labels.len(), c.element_count());
        assert_eq!(labels.iter().filter(|&&l| l).count(), 4);
    }

    #[test]
    fn per_schema_counts_and_overhead() {
        let c = catalog();
        let mut set = LinkageSet::new();
        set.insert(LinkagePair::new(
            id(&c, "S1", "CLIENT", "NAME"),
            id(&c, "S2", "CUSTOMER", "FIRST_NAME"),
            LinkageKind::InterSubTyped,
        ));
        set.insert(LinkagePair::new(
            id(&c, "S1", "CLIENT", "NAME"),
            id(&c, "S2", "CUSTOMER", "LAST_NAME"),
            LinkageKind::InterSubTyped,
        ));
        let per = set.linkable_per_schema(&c);
        assert_eq!(per, vec![1, 2, 0]);
        // 12 elements total (3+1, 4+1, 2+1), 3 linkable → (12-3)/3 = 3.0.
        let oh = set.unlinkable_overhead(&c).unwrap();
        assert!((oh - 3.0).abs() < 1e-12);
    }

    #[test]
    fn overhead_none_when_nothing_linkable() {
        let c = catalog();
        assert!(LinkageSet::new().unlinkable_overhead(&c).is_none());
    }

    #[test]
    fn count_by_kind_and_schema_pair() {
        let c = catalog();
        let mut set = LinkageSet::new();
        set.insert(LinkagePair::new(
            id(&c, "S1", "CLIENT", "CID"),
            id(&c, "S2", "CUSTOMER", "ID"),
            LinkageKind::InterIdentical,
        ));
        set.insert(LinkagePair::new(
            id(&c, "S1", "CLIENT", "NAME"),
            id(&c, "S2", "CUSTOMER", "FIRST_NAME"),
            LinkageKind::InterSubTyped,
        ));
        set.insert(LinkagePair::new(
            id(&c, "S1", "CLIENT", "NAME"),
            id(&c, "S3", "CAR", "CNAME"),
            LinkageKind::InterIdentical,
        ));
        assert_eq!(set.count_kind(LinkageKind::InterIdentical), 2);
        assert_eq!(set.count_kind(LinkageKind::InterSubTyped), 1);
        assert_eq!(set.count_between(0, 1, LinkageKind::InterIdentical), 1);
        assert_eq!(set.count_between(1, 0, LinkageKind::InterIdentical), 1);
        assert_eq!(set.count_between(0, 2, LinkageKind::InterIdentical), 1);
        assert_eq!(set.count_between(1, 2, LinkageKind::InterIdentical), 0);
    }

    #[test]
    fn restriction_drops_broken_pairs() {
        let c = catalog();
        let x = id(&c, "S1", "CLIENT", "NAME");
        let y = id(&c, "S2", "CUSTOMER", "FIRST_NAME");
        let set = LinkageSet::from_pairs([LinkagePair::new(x, y, LinkageKind::InterSubTyped)]);
        let keep_both: HashSet<ElementId> = [x, y].into_iter().collect();
        assert_eq!(set.restricted_to(&keep_both).len(), 1);
        let keep_one: HashSet<ElementId> = [x].into_iter().collect();
        assert_eq!(set.restricted_to(&keep_one).len(), 0);
    }
}
