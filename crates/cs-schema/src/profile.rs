//! Schema profiling and heterogeneity quantification.
//!
//! The paper characterizes multi-source scenarios as heterogeneous along
//! three axes (Section 2.4): **volume** (element counts), **design**
//! (normalization level / attribute atomicity), and **domain**
//! (vocabulary). This module computes per-schema profiles and pairwise /
//! catalog-level heterogeneity indices so scenarios can be compared
//! quantitatively — e.g. OC3 vs OC3-FO, or a user's own catalog against
//! the evaluation datasets.

use crate::catalog::Catalog;
use crate::model::Schema;
use std::collections::{BTreeMap, BTreeSet};

/// Per-schema structural profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaProfile {
    /// Schema name.
    pub name: String,
    /// Table count.
    pub tables: usize,
    /// Attribute count.
    pub attributes: usize,
    /// Mean attributes per table (0 for empty schemas).
    pub mean_table_width: f64,
    /// Widest table.
    pub max_table_width: usize,
    /// Histogram of canonical type words. Ordered so emitters can iterate
    /// it directly without hasher-dependent row order (DESIGN.md §8).
    pub type_histogram: BTreeMap<String, usize>,
    /// Number of key-constrained attributes (PK or FK).
    pub key_attributes: usize,
    /// The schema's name-token vocabulary (upper-cased, split like the
    /// encoder tokenizes); ordered for the same reason as the histogram.
    pub vocabulary: BTreeSet<String>,
}

impl SchemaProfile {
    /// Profiles one schema.
    pub fn of(schema: &Schema) -> Self {
        let tables = schema.table_count();
        let attributes = schema.attribute_count();
        let mut type_histogram: BTreeMap<String, usize> = BTreeMap::new();
        let mut key_attributes = 0;
        let mut vocabulary = BTreeSet::new();
        let mut max_table_width = 0;
        for table in &schema.tables {
            max_table_width = max_table_width.max(table.attributes.len());
            for tok in tokenize_name(&table.name) {
                vocabulary.insert(tok);
            }
            for attr in &table.attributes {
                *type_histogram
                    .entry(attr.data_type.canonical_word().to_string())
                    .or_default() += 1;
                if attr.constraint != crate::model::Constraint::None {
                    key_attributes += 1;
                }
                for tok in tokenize_name(&attr.name) {
                    vocabulary.insert(tok);
                }
            }
        }
        Self {
            name: schema.name.clone(),
            tables,
            attributes,
            mean_table_width: if tables == 0 {
                0.0
            } else {
                attributes as f64 / tables as f64
            },
            max_table_width,
            type_histogram,
            key_attributes,
            vocabulary,
        }
    }
}

/// Splits an identifier into uppercase word tokens (underscores, dashes,
/// digit boundaries; no camel-case handling needed for vocabularies —
/// kept dependency-free of `cs-embed`).
fn tokenize_name(name: &str) -> Vec<String> {
    name.split(|c: char| !c.is_alphanumeric())
        .flat_map(|part| {
            // Split letter/digit boundaries.
            let mut words = Vec::new();
            let mut current = String::new();
            let mut prev_digit = None;
            for ch in part.chars() {
                let is_digit = ch.is_ascii_digit();
                if prev_digit.is_some() && prev_digit != Some(is_digit) && !current.is_empty() {
                    words.push(std::mem::take(&mut current));
                }
                current.extend(ch.to_uppercase());
                prev_digit = Some(is_digit);
            }
            if !current.is_empty() {
                words.push(current);
            }
            words
        })
        .filter(|w| !w.chars().all(|c| c.is_ascii_digit()))
        .collect()
}

/// Catalog-level heterogeneity indices, all in `[0, 1]` (0 = homogeneous).
#[derive(Debug, Clone, PartialEq)]
pub struct HeterogeneityReport {
    /// Per-schema profiles.
    pub profiles: Vec<SchemaProfile>,
    /// Volume heterogeneity: coefficient of variation of element counts,
    /// squashed to `[0, 1)` as `cv / (1 + cv)`.
    pub volume: f64,
    /// Design heterogeneity: relative spread of mean table widths
    /// (attribute atomicity / normalization proxy), squashed like volume.
    pub design: f64,
    /// Domain heterogeneity: `1 −` mean pairwise Jaccard similarity of
    /// the schemas' name vocabularies.
    pub domain: f64,
}

impl HeterogeneityReport {
    /// Profiles a catalog.
    ///
    /// # Panics
    /// If the catalog holds fewer than two schemas (pairwise indices are
    /// undefined).
    pub fn of(catalog: &Catalog) -> Self {
        assert!(
            catalog.schema_count() >= 2,
            "heterogeneity needs at least two schemas"
        );
        let profiles: Vec<SchemaProfile> =
            catalog.schemas().iter().map(SchemaProfile::of).collect();

        let volume = squash(coefficient_of_variation(
            &profiles
                .iter()
                .map(|p| (p.tables + p.attributes) as f64)
                .collect::<Vec<_>>(),
        ));
        let design = squash(coefficient_of_variation(
            &profiles
                .iter()
                .map(|p| p.mean_table_width)
                .collect::<Vec<_>>(),
        ));

        let mut jaccards = Vec::new();
        for i in 0..profiles.len() {
            for j in (i + 1)..profiles.len() {
                jaccards.push(jaccard(&profiles[i].vocabulary, &profiles[j].vocabulary));
            }
        }
        let mean_jaccard = jaccards.iter().sum::<f64>() / jaccards.len() as f64;
        let domain = 1.0 - mean_jaccard;

        Self {
            profiles,
            volume,
            design,
            domain,
        }
    }
}

fn coefficient_of_variation(values: &[f64]) -> f64 {
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean
}

fn squash(cv: f64) -> f64 {
    cv / (1.0 + cv)
}

fn jaccard(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Attribute, Constraint, DataType, Table};

    fn schema(name: &str, tables: &[(&str, &[&str])]) -> Schema {
        Schema::new(
            name,
            tables
                .iter()
                .map(|(tname, attrs)| {
                    Table::new(
                        *tname,
                        attrs
                            .iter()
                            .enumerate()
                            .map(|(i, a)| {
                                Attribute::new(
                                    *a,
                                    DataType::Integer,
                                    if i == 0 {
                                        Constraint::PrimaryKey
                                    } else {
                                        Constraint::None
                                    },
                                )
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn profile_counts() {
        let s = schema(
            "S",
            &[
                ("ORDERS", &["ORDER_ID", "ORDER_DATE"]),
                ("ITEMS", &["ITEM_ID"]),
            ],
        );
        let p = SchemaProfile::of(&s);
        assert_eq!(p.tables, 2);
        assert_eq!(p.attributes, 3);
        assert_eq!(p.max_table_width, 2);
        assert!((p.mean_table_width - 1.5).abs() < 1e-12);
        assert_eq!(p.key_attributes, 2);
        assert_eq!(p.type_histogram["INTEGER"], 3);
        assert!(p.vocabulary.contains("ORDER"));
        assert!(p.vocabulary.contains("ITEMS"));
    }

    #[test]
    fn identical_schemas_are_homogeneous() {
        let a = schema("A", &[("T", &["X_ID", "NAME"])]);
        let b = schema("B", &[("T", &["X_ID", "NAME"])]);
        let report = HeterogeneityReport::of(&Catalog::from_schemas(vec![a, b]));
        assert!(report.volume < 1e-12);
        assert!(report.design < 1e-12);
        assert!(report.domain < 1e-12);
    }

    #[test]
    fn disjoint_vocabulary_maxes_domain() {
        let a = schema("A", &[("CUSTOMER", &["NAME", "CITY"])]);
        let b = schema("B", &[("CIRCUIT", &["LAP", "SPEED"])]);
        let report = HeterogeneityReport::of(&Catalog::from_schemas(vec![a, b]));
        assert!((report.domain - 1.0).abs() < 1e-12);
    }

    #[test]
    fn volume_spread_registers() {
        let small = schema("A", &[("T", &["A"])]);
        let big = schema(
            "B",
            &[
                ("T1", &["A", "B", "C", "D", "E"]),
                ("T2", &["F", "G", "H", "I", "J"]),
            ],
        );
        let report = HeterogeneityReport::of(&Catalog::from_schemas(vec![small, big]));
        assert!(report.volume > 0.3, "{}", report.volume);
    }

    #[test]
    fn indices_bounded() {
        let ds = Catalog::from_schemas(vec![
            schema("A", &[("X", &["A1", "A2"])]),
            schema("B", &[("Y", &["B1"]), ("Z", &["B2", "B3", "B4"])]),
            schema("C", &[("W", &["C1", "A1"])]),
        ]);
        let report = HeterogeneityReport::of(&ds);
        for idx in [report.volume, report.design, report.domain] {
            assert!((0.0..=1.0).contains(&idx), "{idx}");
        }
    }

    #[test]
    fn name_tokenizer_splits_and_filters_digits() {
        assert_eq!(tokenize_name("ADDRESS_LINE1"), vec!["ADDRESS", "LINE"]);
        assert_eq!(tokenize_name("q1_time"), vec!["Q", "TIME"]);
        assert!(tokenize_name("123").is_empty());
    }

    #[test]
    #[should_panic(expected = "at least two schemas")]
    fn single_schema_panics() {
        HeterogeneityReport::of(&Catalog::from_schemas(vec![schema("A", &[("T", &["A"])])]));
    }
}
