//! Metadata-to-text serialization — the paper's `T^a` and `T^t` functions
//! (Section 2.3).
//!
//! - `T^a(a)` = `"<attr name> <table name> <data type> [PRIMARY KEY|FOREIGN KEY]"`,
//!   e.g. `"CID CLIENT INTEGER PRIMARY KEY"`.
//! - `T^t(t)` = `"<table name> [<attr 1>, <attr 2>, …]"`,
//!   e.g. `"CLIENT [CID, NAME, ADDRESS, PHONE]"`.
//!
//! [`SerializeOptions`] lets the signature-composition ablation switch
//! individual metadata parts off (Section 5 of DESIGN.md).

use crate::catalog::{Catalog, ElementId};
use crate::model::{Attribute, ElementRef, Table};

/// Which metadata parts participate in the serialization. The default
/// matches the paper exactly (everything on).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SerializeOptions {
    /// Include the owning table name in `T^a`.
    pub attribute_table_name: bool,
    /// Include the canonical data-type word in `T^a`.
    pub data_type: bool,
    /// Include `PRIMARY KEY` / `FOREIGN KEY` in `T^a`.
    pub constraint: bool,
    /// Include the bracketed attribute-name list in `T^t`.
    pub table_attribute_names: bool,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        Self {
            attribute_table_name: true,
            data_type: true,
            constraint: true,
            table_attribute_names: true,
        }
    }
}

impl SerializeOptions {
    /// Name-only variant used by the signature ablation.
    pub fn names_only() -> Self {
        Self {
            attribute_table_name: false,
            data_type: false,
            constraint: false,
            table_attribute_names: false,
        }
    }
}

/// Serializes an attribute per `T^a`.
pub fn serialize_attribute(attr: &Attribute, table_name: &str, opts: &SerializeOptions) -> String {
    let mut parts: Vec<&str> = vec![&attr.name];
    if opts.attribute_table_name {
        parts.push(table_name);
    }
    let type_word;
    if opts.data_type {
        type_word = attr.data_type.canonical_word().to_string();
        parts.push(&type_word);
    }
    if opts.constraint {
        let c = attr.constraint.words();
        if !c.is_empty() {
            parts.push(c);
        }
    }
    parts.join(" ")
}

/// Serializes a table per `T^t`.
pub fn serialize_table(table: &Table, opts: &SerializeOptions) -> String {
    if !opts.table_attribute_names {
        return table.name.clone();
    }
    let names: Vec<&str> = table.attributes.iter().map(|a| a.name.as_str()).collect();
    format!("{} [{}]", table.name, names.join(", "))
}

/// Serializes one catalog element (dispatching on table vs attribute).
pub fn serialize_element(catalog: &Catalog, id: ElementId, opts: &SerializeOptions) -> String {
    let schema = catalog.schema(id.schema);
    match catalog.element_ref(id) {
        ElementRef::Table { table } => serialize_table(&schema.tables[table], opts),
        ElementRef::Attribute { table, attribute } => {
            let t = &schema.tables[table];
            serialize_attribute(&t.attributes[attribute], &t.name, opts)
        }
    }
}

/// Serializes every element of one schema in canonical order — the paper's
/// `S_k^t` (Algorithm 1 line 1).
pub fn serialize_schema_elements(
    catalog: &Catalog,
    schema: usize,
    opts: &SerializeOptions,
) -> Vec<String> {
    catalog
        .schema_element_ids(schema)
        .into_iter()
        .map(|id| serialize_element(catalog, id, opts))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, DataType, Schema};

    fn client_table() -> Table {
        Table::new(
            "CLIENT",
            vec![
                Attribute::new("CID", DataType::Integer, Constraint::PrimaryKey),
                Attribute::plain("NAME", DataType::Varchar(Some(100))),
                Attribute::plain("ADDRESS", DataType::Varchar(None)),
                Attribute::new("REGION_ID", DataType::Integer, Constraint::ForeignKey),
            ],
        )
    }

    #[test]
    fn paper_example_attribute() {
        let t = client_table();
        let opts = SerializeOptions::default();
        // The paper's Figure-1 example: "CID CLIENT NUMBER PRIMARY KEY"
        // (our canonical type word is INTEGER).
        assert_eq!(
            serialize_attribute(&t.attributes[0], &t.name, &opts),
            "CID CLIENT INTEGER PRIMARY KEY"
        );
        assert_eq!(
            serialize_attribute(&t.attributes[1], &t.name, &opts),
            "NAME CLIENT VARCHAR"
        );
        assert_eq!(
            serialize_attribute(&t.attributes[3], &t.name, &opts),
            "REGION_ID CLIENT INTEGER FOREIGN KEY"
        );
    }

    #[test]
    fn paper_example_table() {
        let t = client_table();
        assert_eq!(
            serialize_table(&t, &SerializeOptions::default()),
            "CLIENT [CID, NAME, ADDRESS, REGION_ID]"
        );
    }

    #[test]
    fn names_only_options() {
        let t = client_table();
        let opts = SerializeOptions::names_only();
        assert_eq!(serialize_attribute(&t.attributes[0], &t.name, &opts), "CID");
        assert_eq!(serialize_table(&t, &opts), "CLIENT");
    }

    #[test]
    fn catalog_element_serialization_order() {
        let schema = Schema::new("S1", vec![client_table()]);
        let catalog = Catalog::from_schemas(vec![schema]);
        let texts = serialize_schema_elements(&catalog, 0, &SerializeOptions::default());
        assert_eq!(texts.len(), 5);
        assert!(texts[0].starts_with("CID CLIENT"));
        assert!(texts[4].starts_with("CLIENT ["));
    }

    #[test]
    fn empty_table_serializes_empty_brackets() {
        let t = Table::new("EMPTY", vec![]);
        assert_eq!(
            serialize_table(&t, &SerializeOptions::default()),
            "EMPTY []"
        );
    }
}
