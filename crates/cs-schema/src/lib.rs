//! # cs-schema
//!
//! Relational-schema substrate: the data model every other crate consumes.
//!
//! - [`model`] — [`Schema`] / [`Table`] / [`Attribute`] metadata objects and
//!   the element addressing scheme ([`ElementId`], [`ElementRef`]),
//! - [`catalog`] — a [`Catalog`] of multiple schemas with a stable global
//!   element enumeration (the row order of every signature matrix),
//! - [`ddl`] — a SQL `CREATE TABLE` parser so datasets load from DDL text,
//! - [`serialize`] — the paper's `T^a` / `T^t` metadata-to-text functions,
//! - [`linkage`] — ground-truth [`LinkageSet`] with linkability labels
//!   (Definition 1) and unlinkable-overhead computation (Section 2.1).

pub mod catalog;
pub mod ddl;
pub mod linkage;
pub mod model;
pub mod profile;
pub mod serialize;

pub use catalog::{Catalog, ElementId, ElementInfo};
pub use ddl::{parse_schema, DdlError};
pub use linkage::{LinkageKind, LinkagePair, LinkageSet};
pub use model::{Attribute, Constraint, DataType, ElementRef, Schema, Table};
pub use profile::{HeterogeneityReport, SchemaProfile};
pub use serialize::{serialize_attribute, serialize_table, SerializeOptions};
