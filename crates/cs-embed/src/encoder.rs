//! The signature encoder `E`: serialized metadata text → 768-d signature.
//!
//! Pipeline per text: tokenize → per-token vectors → stopword-aware
//! weighted mean pooling → L2 normalization (Sentence-BERT's average
//! pooling analog, Section 2.3 of the paper).
//!
//! Per-token vectors combine three deterministic ingredients:
//!
//! 1. **Concept direction** — a seeded Gaussian direction per lexicon
//!    concept, blended with its hypernym chain (decaying) and a domain
//!    direction. Synonyms share it; hyponyms tilt toward their parent;
//!    same-domain words tilt toward each other.
//! 2. **Surface direction** — the token's character-trigram vector, so two
//!    spellings of one concept stay distinguishable (`ORDERDATE` vs
//!    `ORDER_DATETIME` — the paper's false-negative anecdote survives).
//! 3. **Subword segmentation** — out-of-lexicon tokens are greedily
//!    segmented against the lexicon vocabulary (`CUSTOMERNUMBER` →
//!    `CUSTOMER + NUMBER`), mimicking BERT's WordPiece; an
//!    initial-prefix rule maps `CNAME`/`CID`-style abbreviations onto
//!    `NAME`/`ID` with a stronger surface component.

use crate::hash::{seeded_direction, trigram_vector};
use crate::lexicon::{domains, ConceptEntry, Lexicon};
use crate::token::tokenize;
use cs_linalg::vecops::{axpy, normalize};
use cs_linalg::Matrix;
use std::collections::HashMap;
use std::sync::RwLock;

/// Tunable knobs of the encoder. The defaults are what every experiment in
/// the workspace uses; they were chosen once to produce plausible
/// similarity bands (synonyms ≈ 0.5–0.8, hyponyms ≈ 0.3–0.6, unrelated
/// ≈ 0) and are *not* fitted to the evaluation datasets.
#[derive(Debug, Clone, PartialEq)]
pub struct EncoderConfig {
    /// Signature dimensionality (the paper uses 768).
    pub dim: usize,
    /// Global seed; changing it re-randomizes all directions coherently.
    pub seed: u64,
    /// Surface (trigram) share for in-lexicon tokens, `0..1`.
    pub surface_blend: f64,
    /// Surface share for initial-prefixed abbreviations (`CID`, `CNAME`).
    pub abbrev_surface_blend: f64,
    /// Ancestor direction decay per hypernym level.
    pub parent_decay: f64,
    /// Weight of the domain direction mixed into non-generic concepts.
    pub domain_pull: f64,
    /// Pooling weight of SQL type/constraint words (they carry little
    /// entity semantics, like stopwords under SBERT attention).
    pub type_word_weight: f64,
    /// Pooling weight of every token after the first. The serializations
    /// `T^a`/`T^t` lead with the element's own name; a transformer's
    /// attention concentrates on that head noun, so context tokens (table
    /// name, type words) are damped relative to it.
    pub context_weight: f64,
    /// Minimum piece length for subword segmentation.
    pub min_piece_len: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        Self {
            dim: 768,
            seed: 0xC0FF_EE20_26ED_B700,
            surface_blend: 0.18,
            abbrev_surface_blend: 0.32,
            parent_decay: 0.55,
            domain_pull: 0.35,
            type_word_weight: 0.30,
            context_weight: 0.55,
            min_piece_len: 2,
        }
    }
}

/// The encoder `E`. Cheap to clone conceptually but owns caches; share one
/// instance per experiment. Thread-safe: token vectors are cached behind an
/// `RwLock`.
pub struct SignatureEncoder {
    config: EncoderConfig,
    lexicon: Lexicon,
    token_cache: RwLock<HashMap<String, Vec<f64>>>,
}

impl Default for SignatureEncoder {
    fn default() -> Self {
        Self::new(EncoderConfig::default(), Lexicon::default_lexicon())
    }
}

impl SignatureEncoder {
    /// Creates an encoder from a config and lexicon.
    pub fn new(config: EncoderConfig, lexicon: Lexicon) -> Self {
        assert!(config.dim > 0, "dimension must be positive");
        assert!(
            (0.0..=1.0).contains(&config.surface_blend)
                && (0.0..=1.0).contains(&config.abbrev_surface_blend),
            "blends must lie in [0, 1]"
        );
        Self {
            config,
            lexicon,
            token_cache: RwLock::new(HashMap::new()),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The lexicon in use.
    pub fn lexicon(&self) -> &Lexicon {
        &self.lexicon
    }

    /// Signature dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Encodes one serialized metadata text into a unit-norm signature.
    /// Empty or symbol-only text yields the zero vector.
    pub fn encode(&self, text: &str) -> Vec<f64> {
        let tokens = tokenize(text);
        let mut acc = vec![0.0; self.config.dim];
        let mut total_weight = 0.0;
        let mut first = true;
        for tok in &tokens {
            if tok.chars().all(|c| c.is_ascii_digit()) {
                continue; // bare numbers carry no schema semantics
            }
            let position = if first {
                1.0
            } else {
                self.config.context_weight
            };
            first = false;
            let w = self.pool_weight(tok) * position;
            let v = self.token_vector(tok);
            axpy(&mut acc, w, &v);
            total_weight += w;
        }
        if total_weight > 0.0 {
            normalize(&mut acc);
        }
        acc
    }

    /// Encodes a batch of texts into a row-per-text matrix.
    pub fn encode_batch(&self, texts: &[String]) -> Matrix {
        let rows: Vec<Vec<f64>> = texts.iter().map(|t| self.encode(t)).collect();
        if rows.is_empty() {
            Matrix::zeros(0, self.config.dim)
        } else {
            Matrix::from_rows(&rows)
        }
    }

    /// Pooling weight of a token (SQL type words are down-weighted).
    fn pool_weight(&self, token: &str) -> f64 {
        match self.lexicon.resolve(token) {
            Some(e) if e.domain == domains::TYPE => self.config.type_word_weight,
            _ => 1.0,
        }
    }

    /// The (cached) vector of one uppercase token.
    pub fn token_vector(&self, token: &str) -> Vec<f64> {
        // Poison recovery, not a panic: a worker that panicked while
        // holding the cache lock (e.g. an injected fault) must not
        // cascade into every later encode. The cache itself is a pure
        // memo table, so the stored values stay valid.
        //
        // Both acquisitions report to the runtime sanitizer (DESIGN.md
        // §12) under one lock name: read and write are *sequential*
        // here, so a sanitized run records no self-edge — if a future
        // refactor nests them, the cycle shows up in the lock-order
        // digest.
        let read_trace = cs_linalg::sanitize::trace("embed.token_cache");
        if let Some(v) = self
            .token_cache
            .read()
            .unwrap_or_else(|p| p.into_inner())
            .get(token)
        {
            return v.clone();
        }
        drop(read_trace);
        let v = self.compute_token_vector(token);
        let _write_trace = cs_linalg::sanitize::trace("embed.token_cache");
        self.token_cache
            .write()
            .unwrap_or_else(|p| p.into_inner())
            .insert(token.to_string(), v.clone());
        v
    }

    fn compute_token_vector(&self, token: &str) -> Vec<f64> {
        let surface = trigram_vector(token, self.config.seed, self.config.dim);
        // 1) Direct lexicon hit.
        if let Some(entry) = self.lexicon.resolve(token) {
            return self.blend(
                self.concept_vector(entry),
                &surface,
                self.config.surface_blend,
            );
        }
        // 2) Initial-prefix abbreviation: CNAME → NAME, OID → ID.
        // Strip one *character*, not one byte — a multi-byte first char
        // (non-ASCII identifiers) must not panic on the slice boundary.
        let tail = token
            .char_indices()
            .nth(1)
            .map(|(i, _)| &token[i..])
            .unwrap_or("");
        if token.len() >= 3 && !tail.is_empty() {
            if let Some(entry) = self.lexicon.resolve(tail) {
                return self.blend(
                    self.concept_vector(entry),
                    &surface,
                    self.config.abbrev_surface_blend,
                );
            }
        }
        // 3) WordPiece-style segmentation over the lexicon vocabulary.
        if let Some(pieces) = self.segment(token) {
            let mut acc = vec![0.0; self.config.dim];
            for piece in &pieces {
                let entry = self
                    .lexicon
                    .resolve(piece)
                    .expect("segment returns vocab words");
                axpy(&mut acc, 1.0, &self.concept_vector(entry));
            }
            normalize(&mut acc);
            return self.blend(acc, &surface, self.config.surface_blend);
        }
        // 4) Pure surface form.
        surface
    }

    fn blend(&self, mut semantic: Vec<f64>, surface: &[f64], beta: f64) -> Vec<f64> {
        for x in &mut semantic {
            *x *= 1.0 - beta;
        }
        axpy(&mut semantic, beta, surface);
        normalize(&mut semantic);
        semantic
    }

    /// Concept direction: own direction + decaying hypernym chain + domain.
    fn concept_vector(&self, entry: &ConceptEntry) -> Vec<f64> {
        let mut acc = seeded_direction(
            &format!("concept:{}", entry.concept),
            self.config.seed,
            self.config.dim,
        );
        for (level, anc) in self.lexicon.ancestors(&entry.concept).iter().enumerate() {
            let w = self.config.parent_decay.powi(level as i32 + 1);
            let dir = seeded_direction(
                &format!("concept:{}", anc.concept),
                self.config.seed,
                self.config.dim,
            );
            axpy(&mut acc, w, &dir);
        }
        if entry.domain != domains::GENERIC {
            let dir = seeded_direction(
                &format!("domain:{}", entry.domain),
                self.config.seed,
                self.config.dim,
            );
            axpy(&mut acc, self.config.domain_pull, &dir);
        }
        normalize(&mut acc);
        acc
    }

    /// Minimal-piece segmentation of `token` into lexicon vocabulary words
    /// (each piece at least `min_piece_len` chars). Returns `None` when no
    /// full cover exists.
    pub fn segment(&self, token: &str) -> Option<Vec<String>> {
        let chars: Vec<char> = token.chars().collect();
        let n = chars.len();
        if n < self.config.min_piece_len * 2 {
            return None;
        }
        // dp[i] = min pieces to cover prefix of length i.
        const INF: usize = usize::MAX;
        let mut dp = vec![INF; n + 1];
        let mut back: Vec<usize> = vec![0; n + 1];
        dp[0] = 0;
        for i in 1..=n {
            for j in 0..=(i.saturating_sub(self.config.min_piece_len)) {
                if dp[j] == INF {
                    continue;
                }
                let piece: String = chars[j..i].iter().collect();
                if self.lexicon.contains_token(&piece) && dp[j] + 1 < dp[i] {
                    dp[i] = dp[j] + 1;
                    back[i] = j;
                }
            }
        }
        if dp[n] == INF || dp[n] > 4 {
            return None;
        }
        let mut pieces = Vec::with_capacity(dp[n]);
        let mut i = n;
        while i > 0 {
            let j = back[i];
            pieces.push(chars[j..i].iter().collect::<String>());
            i = j;
        }
        pieces.reverse();
        Some(pieces)
    }

    /// Cosine similarity of two encoded texts — convenience for tests,
    /// examples, and the SIM matcher.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        cs_linalg::vecops::cosine(&self.encode(a), &self.encode(b))
    }
}

impl std::fmt::Debug for SignatureEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SignatureEncoder")
            .field("config", &self.config)
            .field("lexicon_concepts", &self.lexicon.entries().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::vecops::{cosine, norm};

    fn enc() -> SignatureEncoder {
        SignatureEncoder::default()
    }

    #[test]
    fn signatures_are_unit_norm_and_deterministic() {
        let e = enc();
        let a = e.encode("CID CLIENT INTEGER PRIMARY KEY");
        let b = e.encode("CID CLIENT INTEGER PRIMARY KEY");
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-12);
        assert_eq!(a.len(), 768);
    }

    #[test]
    fn empty_text_is_zero_vector() {
        let e = enc();
        let v = e.encode("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn hostile_text_never_produces_non_finite_signatures() {
        // Degenerate serialized metadata — whitespace runs, repeated
        // tokens, huge identifiers, control characters, non-ASCII —
        // must encode to finite vectors (NaN here would silently poison
        // every downstream PCA).
        let e = enc();
        let huge = "X".repeat(10_000);
        let hostile = [
            "   \t\n  ",
            "A A A A A A A A A A A A A A A A",
            huge.as_str(),
            "NULL NULL NULL []",
            "\u{0}\u{1}\u{2}",
            "ÜBERWEISUNG Ω λ 名前",
            "-- ; DROP TABLE []",
        ];
        for text in hostile {
            let v = e.encode(text);
            assert!(
                v.iter().all(|x| x.is_finite()),
                "non-finite signature for {text:?}"
            );
        }
    }

    #[test]
    fn synonyms_are_close_unrelated_are_far() {
        let e = enc();
        let syn = e.similarity("CLIENT", "CUSTOMER");
        let unrel = e.similarity("CLIENT", "CIRCUIT");
        assert!(syn > 0.45, "synonym similarity {syn}");
        assert!(unrel < 0.25, "unrelated similarity {unrel}");
        assert!(syn > unrel + 0.3);
    }

    #[test]
    fn hyponym_sits_between_synonym_and_unrelated() {
        let e = enc();
        let iden = e.similarity("ADDRESS", "ADDR");
        let hypo = e.similarity("CITY", "ADDRESS");
        let unrel = e.similarity("CITY", "ENGINE");
        assert!(iden > hypo, "identical {iden} vs hyponym {hypo}");
        assert!(hypo > unrel + 0.15, "hyponym {hypo} vs unrelated {unrel}");
    }

    #[test]
    fn table_context_disambiguates_cname() {
        // The paper's Figure-1 point: CNAME of a client is NOT the CNAME of
        // a car; the pooled table token separates them.
        let e = enc();
        let client_cname = "CNAME CUSTOMERS VARCHAR";
        let car_cname = "CNAME CAR VARCHAR";
        let client_name = "NAME CLIENT VARCHAR";
        let s_match = e.similarity(client_cname, client_name);
        let s_clash = e.similarity(car_cname, client_name);
        assert!(
            s_match > s_clash + 0.1,
            "client CNAME {s_match} should beat car CNAME {s_clash}"
        );
    }

    #[test]
    fn paper_false_negative_anecdote_surface_gap() {
        // ORDERDATE vs ORDER_DATETIME: similar but not identical.
        let e = enc();
        let a = "ORDERDATE ORDERS DATE";
        let b = "ORDER_DATETIME ORDERS DATE";
        let sim = e.similarity(a, b);
        assert!(sim > 0.6, "related order dates {sim}");
        assert!(sim < 0.995, "must not collapse {sim}");
    }

    #[test]
    fn split_attribute_pools_toward_whole() {
        // FIRST_NAME + LAST_NAME each relate to NAME (inter-sub-typed).
        let e = enc();
        let first = e.similarity("FIRST_NAME CUSTOMER VARCHAR", "NAME CLIENT VARCHAR");
        let unrel = e.similarity("FIRST_NAME CUSTOMER VARCHAR", "LAP RACES INTEGER");
        assert!(first > 0.4, "sub-typed {first}");
        assert!(first > unrel + 0.3);
    }

    #[test]
    fn segmentation_splits_joined_words() {
        let e = enc();
        assert_eq!(e.segment("ORDERDATE").unwrap(), vec!["ORDER", "DATE"]);
        assert_eq!(
            e.segment("CUSTOMERNUMBER").unwrap(),
            vec!["CUSTOMER", "NUMBER"]
        );
        assert!(e.segment("QZXV").is_none());
        // Too short to split.
        assert!(e.segment("AB").is_none());
    }

    #[test]
    fn abbreviation_rule_maps_cid_to_identifier() {
        let e = enc();
        let cid = e.similarity("CID", "ID");
        let cid_vs_unrelated = e.similarity("CID", "ADDRESS");
        assert!(cid > 0.4, "CID~ID {cid}");
        assert!(cid > cid_vs_unrelated + 0.2);
        // But different abbreviations stay distinguishable.
        let cid_oid = e.similarity("CID", "OID");
        assert!(cid_oid < 0.98);
    }

    #[test]
    fn type_words_are_downweighted_but_present() {
        let e = enc();
        // Same name, different types: still very similar.
        let s = e.similarity("PRICE PRODUCTS DECIMAL", "PRICE PRODUCTS FLOAT");
        assert!(s > 0.85, "type change keeps similarity {s}");
        // Type-only difference smaller than name difference.
        let name_change = e.similarity("PRICE PRODUCTS DECIMAL", "WEIGHT PRODUCTS DECIMAL");
        assert!(s > name_change);
    }

    #[test]
    fn domain_pull_separates_commerce_from_motorsport() {
        let e = enc();
        // Two generic-ish texts from different domains.
        let commerce = e.encode("SHIPMENT ORDERS DATE");
        let motorsport = e.encode("SPRINT RACES DATE");
        let commerce2 = e.encode("PAYMENT INVOICE DATE");
        let within = cosine(&commerce, &commerce2);
        let across = cosine(&commerce, &motorsport);
        assert!(within > across, "within-domain {within} vs across {across}");
    }

    #[test]
    fn batch_matches_individual() {
        let e = enc();
        let texts = vec![
            "CLIENT [CID, NAME]".to_string(),
            "CAR [CID, CNAME]".to_string(),
        ];
        let m = e.encode_batch(&texts);
        assert_eq!(m.shape(), (2, 768));
        assert_eq!(m.row(0), e.encode(&texts[0]).as_slice());
    }

    #[test]
    fn empty_batch_shape() {
        let e = enc();
        let m = e.encode_batch(&[]);
        assert_eq!(m.shape(), (0, 768));
    }

    #[test]
    fn different_seeds_give_different_geometry() {
        let cfg = EncoderConfig {
            seed: 42,
            ..EncoderConfig::default()
        };
        let e1 = SignatureEncoder::new(cfg, Lexicon::default_lexicon());
        let e2 = enc();
        assert_ne!(e1.encode("CLIENT"), e2.encode("CLIENT"));
        // But the semantic *structure* is preserved.
        assert!(e1.similarity("CLIENT", "CUSTOMER") > 0.45);
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn zero_dim_rejected() {
        SignatureEncoder::new(
            EncoderConfig {
                dim: 0,
                ..EncoderConfig::default()
            },
            Lexicon::default_lexicon(),
        );
    }

    #[test]
    fn numbers_are_skipped() {
        let e = enc();
        let a = e.encode("ADDRESS1 CUSTOMER VARCHAR");
        let b = e.encode("ADDRESS2 CUSTOMER VARCHAR");
        // ADDRESS1/ADDRESS2 tokenize to ADDRESS + digit; digits skipped.
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-9);
    }
}
