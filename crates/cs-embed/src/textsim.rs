//! Classic string-similarity measures.
//!
//! Related work (Section 2.2) matches schema element names with string
//! similarity (Levenshtein, fuzzy measures). These are provided both as a
//! baseline matcher ingredient and for examples comparing lexical vs
//! semantic matching.

/// Levenshtein edit distance between two strings (by Unicode scalar).
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    // Single-row DP.
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Normalized Levenshtein similarity in `[0, 1]`.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches_a.push((i, j));
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    // Transpositions: compare match sequences in order.
    let b_matches: Vec<usize> = {
        let mut v: Vec<(usize, usize)> = matches_a.clone();
        v.sort_by_key(|&(i, _)| i);
        v.into_iter().map(|(_, j)| j).collect()
    };
    let mut sorted_b = b_matches.clone();
    sorted_b.sort_unstable();
    let t = b_matches
        .iter()
        .zip(sorted_b.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro–Winkler similarity with the standard prefix scale 0.1 (capped at 4).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// Jaccard similarity of character n-gram sets.
pub fn ngram_jaccard(a: &str, b: &str, n: usize) -> f64 {
    assert!(n > 0, "n-gram size must be positive");
    let grams = |s: &str| -> std::collections::HashSet<String> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() < n {
            if chars.is_empty() {
                return Default::default();
            }
            return std::iter::once(chars.iter().collect()).collect();
        }
        chars.windows(n).map(|w| w.iter().collect()).collect()
    };
    let ga = grams(a);
    let gb = grams(b);
    if ga.is_empty() && gb.is_empty() {
        return 1.0;
    }
    let inter = ga.intersection(&gb).count();
    let union = ga.len() + gb.len() - inter;
    if union == 0 {
        1.0
    } else {
        inter as f64 / union as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_known_values() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_similarity_bounds() {
        assert_eq!(levenshtein_similarity("", ""), 1.0);
        assert_eq!(levenshtein_similarity("abc", "abc"), 1.0);
        assert_eq!(levenshtein_similarity("abc", "xyz"), 0.0);
        let s = levenshtein_similarity("ORDER_DATE", "ORDERDATE");
        assert!(s > 0.8, "{s}");
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("MARTHA", "MARHTA") - 0.9444444).abs() < 1e-6);
        assert!((jaro("DIXON", "DICKSONX") - 0.7666666).abs() < 1e-6);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("A", ""), 0.0);
        assert_eq!(jaro("ABC", "XYZ"), 0.0);
    }

    #[test]
    fn jaro_winkler_known_values() {
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.9611111).abs() < 1e-6);
        assert!((jaro_winkler("DWAYNE", "DUANE") - 0.84).abs() < 1e-2);
        // Winkler boost only helps with shared prefixes.
        assert!(jaro_winkler("PREFIX", "PREFIXES") > jaro("PREFIX", "PREFIXES"));
    }

    #[test]
    fn symmetric() {
        for (a, b) in [("ORDERS", "ORDER"), ("CLIENT", "CUSTOMER"), ("", "X")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
            assert!((ngram_jaccard(a, b, 2) - ngram_jaccard(b, a, 2)).abs() < 1e-12);
        }
    }

    #[test]
    fn ngram_jaccard_cases() {
        assert_eq!(ngram_jaccard("abc", "abc", 2), 1.0);
        assert_eq!(ngram_jaccard("", "", 2), 1.0);
        assert_eq!(ngram_jaccard("abcd", "wxyz", 2), 0.0);
        let s = ngram_jaccard("ADDRESS", "ADDRESSES", 3);
        assert!(s > 0.5, "{s}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_ngram_panics() {
        ngram_jaccard("a", "b", 0);
    }
}
