//! # cs-embed
//!
//! Deterministic semantic signature encoder — the workspace's substitute
//! for the paper's Sentence-BERT (`all-mpnet-base-v2`) encoder `E`.
//!
//! ## Why a substitute
//!
//! The paper encodes metadata serializations (`T^a` / `T^t` strings) into
//! 768-dimensional signatures with a pre-trained language model. Shipping
//! model weights is impossible here, and what the scoping pipeline consumes
//! is only the *geometry* of the signature cloud:
//!
//! 1. synonyms land close (`CLIENT` ≈ `CUSTOMER`),
//! 2. hyponyms land at an angle to their hypernym (`CITY` vs `ADDRESS`),
//! 3. unrelated domains land far apart (commerce vs motorsport),
//! 4. context words shift the pooled vector (`CNAME CLIENT …` differs from
//!    `CNAME CAR …`),
//! 5. surface form matters a little (`ORDERDATE` vs `ORDER_DATETIME`
//!    similar but not identical).
//!
//! [`SignatureEncoder`] reproduces exactly these five relations with a
//! curated concept [`lexicon`], seeded Gaussian concept directions, and
//! character-trigram [`hash`]ing for out-of-vocabulary tokens, pooled by a
//! stopword-aware weighted mean (Sentence-BERT's average pooling analog).
//! Everything is seeded: identical inputs give bit-identical signatures on
//! every platform, which the experiment harness relies on.
//!
//! The [`textsim`] module additionally provides classic string-similarity
//! measures (Levenshtein, Jaro-Winkler, n-gram Jaccard) used by related-work
//! baselines and examples.

pub mod encoder;
pub mod hash;
pub mod lexicon;
pub mod textsim;
pub mod token;

pub use encoder::{EncoderConfig, SignatureEncoder};
pub use lexicon::{ConceptEntry, Lexicon};
pub use token::tokenize;
