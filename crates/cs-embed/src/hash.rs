//! Feature hashing of character trigrams into Gaussian directions.
//!
//! Out-of-lexicon tokens still need a stable vector, and in-lexicon tokens
//! need a small surface-form component so `ORDERDATE` and `ORDER_DATETIME`
//! do not collapse onto identical points. Both come from hashing the
//! token's boundary-padded character trigrams: each trigram seeds a unit
//! Gaussian direction, and the token vector is the normalized sum. Tokens
//! sharing trigrams (similar spellings) therefore share vector mass —
//! a smooth, deterministic analog of subword embeddings.

use cs_linalg::{SplitMix64, Xoshiro256};

/// FNV-1a hash of a byte string — stable across platforms and runs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic unit Gaussian direction for an arbitrary label.
///
/// The same `(label, seed, dim)` always produces the same vector.
pub fn seeded_direction(label: &str, seed: u64, dim: usize) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from(SplitMix64::new(fnv1a(label.as_bytes()) ^ seed).next_u64());
    let mut v = vec![0.0; dim];
    rng.fill_gaussian(&mut v);
    cs_linalg::vecops::normalize(&mut v);
    v
}

/// Boundary-padded character trigrams of a token: `"CAT"` →
/// `["^CA", "CAT", "AT$"]`. Tokens shorter than 3 characters yield their
/// padded form as a single gram.
pub fn trigrams(token: &str) -> Vec<String> {
    let padded: Vec<char> = std::iter::once('^')
        .chain(token.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < 3 {
        return vec![padded.iter().collect()];
    }
    padded.windows(3).map(|w| w.iter().collect()).collect()
}

/// Normalized sum of the trigram directions of `token` — its surface-form
/// vector.
pub fn trigram_vector(token: &str, seed: u64, dim: usize) -> Vec<f64> {
    let mut acc = vec![0.0; dim];
    for gram in trigrams(token) {
        let dir = seeded_direction(&gram, seed, dim);
        cs_linalg::vecops::axpy(&mut acc, 1.0, &dir);
    }
    cs_linalg::vecops::normalize(&mut acc);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::vecops::{cosine, norm};

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn directions_are_deterministic_and_unit() {
        let a = seeded_direction("CUSTOMER", 1, 64);
        let b = seeded_direction("CUSTOMER", 1, 64);
        assert_eq!(a, b);
        assert!((norm(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn directions_differ_by_label_and_seed() {
        let a = seeded_direction("CUSTOMER", 1, 256);
        let b = seeded_direction("PRODUCT", 1, 256);
        let c = seeded_direction("CUSTOMER", 2, 256);
        // Random 256-d directions are near-orthogonal.
        assert!(cosine(&a, &b).abs() < 0.25);
        assert!(cosine(&a, &c).abs() < 0.25);
    }

    #[test]
    fn trigram_extraction() {
        assert_eq!(trigrams("CAT"), vec!["^CA", "CAT", "AT$"]);
        assert_eq!(trigrams("AB"), vec!["^AB", "AB$"]);
        assert_eq!(trigrams("A"), vec!["^A$"]);
        assert_eq!(trigrams(""), vec!["^$"]);
    }

    #[test]
    fn similar_spellings_share_mass() {
        let dim = 768;
        let a = trigram_vector("ORDERDATE", 7, dim);
        let b = trigram_vector("ORDERDATES", 7, dim);
        let c = trigram_vector("CIRCUIT", 7, dim);
        assert!(
            cosine(&a, &b) > 0.6,
            "near-identical spellings: {}",
            cosine(&a, &b)
        );
        assert!(
            cosine(&a, &c) < 0.3,
            "unrelated spellings: {}",
            cosine(&a, &c)
        );
    }

    #[test]
    fn trigram_vector_is_unit() {
        let v = trigram_vector("PAYMENT", 3, 128);
        assert!((norm(&v) - 1.0).abs() < 1e-12);
    }
}
