//! The concept lexicon: curated word semantics for schema vocabulary.
//!
//! Sentence-BERT knows from pre-training that *client* ≈ *customer* and that
//! *city* is part of an *address*. This module replaces that knowledge with
//! an explicit concept graph: each [`ConceptEntry`] names a concept, the
//! surface tokens that denote it, an optional hypernym (`parent`), and a
//! domain tag. The encoder turns concepts into seeded Gaussian directions
//! and blends in parent and domain directions, which is what makes
//! synonyms collapse, hyponyms sit at an angle, and domains separate.
//!
//! [`Lexicon::default_lexicon`] covers the vocabulary of the evaluation
//! datasets: generic database words, the order–customer (commerce) domain,
//! the Formula-One (motorsport) domain, and SQL type words.

use std::collections::HashMap;

/// Domain tags used by the default lexicon.
pub mod domains {
    /// Cross-domain vocabulary (no domain pull).
    pub const GENERIC: &str = "GENERIC";
    /// Order-customer / commerce vocabulary.
    pub const COMMERCE: &str = "COMMERCE";
    /// Formula-One / motorsport vocabulary.
    pub const MOTORSPORT: &str = "MOTORSPORT";
    /// SQL type and constraint words.
    pub const TYPE: &str = "TYPE";
}

/// One concept: canonical name, surface forms, optional hypernym, domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConceptEntry {
    /// Canonical concept name (also seeds its Gaussian direction).
    pub concept: String,
    /// Hypernym concept name, if any (e.g. `city` → `address`).
    pub parent: Option<String>,
    /// Domain tag (see [`domains`]).
    pub domain: String,
    /// Uppercase surface tokens that resolve to this concept.
    pub synonyms: Vec<String>,
}

impl ConceptEntry {
    /// Convenience constructor from string-likes.
    pub fn new(
        concept: impl Into<String>,
        parent: Option<&str>,
        domain: impl Into<String>,
        synonyms: &[&str],
    ) -> Self {
        Self {
            concept: concept.into(),
            parent: parent.map(str::to_string),
            domain: domain.into(),
            synonyms: synonyms.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Token → concept resolution table.
#[derive(Debug, Clone)]
pub struct Lexicon {
    entries: Vec<ConceptEntry>,
    by_token: HashMap<String, usize>,
    by_concept: HashMap<String, usize>,
}

impl Lexicon {
    /// Builds a lexicon from entries.
    ///
    /// # Panics
    /// If a surface token is claimed by two concepts, or a `parent` names an
    /// unknown concept — both are authoring bugs worth failing loudly on.
    pub fn new(entries: Vec<ConceptEntry>) -> Self {
        let mut by_token = HashMap::new();
        let mut by_concept = HashMap::new();
        for (i, e) in entries.iter().enumerate() {
            if by_concept.insert(e.concept.clone(), i).is_some() {
                panic!("duplicate concept {}", e.concept);
            }
        }
        for (i, e) in entries.iter().enumerate() {
            for tok in &e.synonyms {
                if let Some(prev) = by_token.insert(tok.clone(), i) {
                    panic!(
                        "token {tok} claimed by both {} and {}",
                        entries[prev].concept, e.concept
                    );
                }
            }
            if let Some(p) = &e.parent {
                assert!(
                    by_concept.contains_key(p),
                    "concept {} has unknown parent {p}",
                    e.concept
                );
            }
        }
        Self {
            entries,
            by_token,
            by_concept,
        }
    }

    /// Resolves an uppercase surface token to its concept.
    pub fn resolve(&self, token: &str) -> Option<&ConceptEntry> {
        self.by_token.get(token).map(|&i| &self.entries[i])
    }

    /// Looks up a concept by canonical name.
    pub fn concept(&self, name: &str) -> Option<&ConceptEntry> {
        self.by_concept.get(name).map(|&i| &self.entries[i])
    }

    /// True if the token resolves to some concept.
    pub fn contains_token(&self, token: &str) -> bool {
        self.by_token.contains_key(token)
    }

    /// All entries.
    pub fn entries(&self) -> &[ConceptEntry] {
        &self.entries
    }

    /// Hypernym chain of a concept, nearest first (excluding itself).
    pub fn ancestors(&self, concept: &str) -> Vec<&ConceptEntry> {
        let mut out = Vec::new();
        let mut cur = self.concept(concept).and_then(|e| e.parent.as_deref());
        let mut guard = 0;
        while let Some(p) = cur {
            guard += 1;
            assert!(guard < 16, "parent cycle at {p}");
            let entry = self.concept(p).expect("validated at construction");
            out.push(entry);
            cur = entry.parent.as_deref();
        }
        out
    }

    /// Parses lexicon entries from a plain-text description, one concept
    /// per line:
    ///
    /// ```text
    /// # comment
    /// concept | parent-or-"-" | DOMAIN | SYN1, SYN2, ...
    /// city    | address       | GENERIC | CITY, TOWN
    /// ```
    ///
    /// Used by the `scope` CLI's `--lexicon` flag so users can extend the
    /// vocabulary without recompiling. Entries returned here are meant to
    /// be appended to [`Lexicon::default_lexicon`]'s entries (parents may
    /// reference default concepts).
    ///
    /// # Errors
    /// Returns a line-numbered message on malformed input.
    pub fn parse_entries(text: &str) -> Result<Vec<ConceptEntry>, String> {
        let mut out = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split('|').map(str::trim).collect();
            if parts.len() != 4 {
                return Err(format!(
                    "line {}: expected 'concept | parent | domain | synonyms', got {line:?}",
                    lineno + 1
                ));
            }
            let concept = parts[0];
            if concept.is_empty() {
                return Err(format!("line {}: empty concept name", lineno + 1));
            }
            let parent = match parts[1] {
                "-" | "" => None,
                p => Some(p),
            };
            let synonyms: Vec<String> = parts[3]
                .split(',')
                .map(|s| s.trim().to_uppercase())
                .filter(|s| !s.is_empty())
                .collect();
            if synonyms.is_empty() {
                return Err(format!(
                    "line {}: concept {concept} has no synonyms",
                    lineno + 1
                ));
            }
            out.push(ConceptEntry {
                concept: concept.to_string(),
                parent: parent.map(str::to_string),
                domain: parts[2].to_uppercase(),
                synonyms,
            });
        }
        Ok(out)
    }

    /// [`Lexicon::default_lexicon`] extended with entries parsed from a
    /// text description (see [`Lexicon::parse_entries`]).
    ///
    /// # Errors
    /// Propagates parse errors, and reports duplicate concepts/tokens and
    /// unknown parents as errors (unlike [`Lexicon::new`], which treats
    /// them as authoring bugs and panics) — extension text is user input,
    /// not source code.
    pub fn default_with_extensions(text: &str) -> Result<Self, String> {
        let mut entries = Self::default_lexicon().entries().to_vec();
        let extensions = Self::parse_entries(text)?;
        let mut concepts: std::collections::HashSet<String> =
            entries.iter().map(|e| e.concept.clone()).collect();
        let mut tokens: std::collections::HashSet<String> = entries
            .iter()
            .flat_map(|e| e.synonyms.iter().cloned())
            .collect();
        for ext in &extensions {
            if !concepts.insert(ext.concept.clone()) {
                return Err(format!("extension redefines concept {}", ext.concept));
            }
            for tok in &ext.synonyms {
                if !tokens.insert(tok.clone()) {
                    return Err(format!(
                        "extension token {tok} (concept {}) is already claimed",
                        ext.concept
                    ));
                }
            }
        }
        for ext in &extensions {
            if let Some(p) = &ext.parent {
                if !concepts.contains(p) {
                    return Err(format!(
                        "extension concept {} has unknown parent {p}",
                        ext.concept
                    ));
                }
            }
        }
        entries.extend(extensions);
        Ok(Self::new(entries))
    }

    /// The default lexicon covering the evaluation datasets' vocabulary.
    pub fn default_lexicon() -> Self {
        use domains::*;
        macro_rules! c {
            ($concept:literal, $parent:expr, $domain:expr, [$($syn:literal),*]) => {
                ConceptEntry::new($concept, $parent, $domain, &[$($syn),*])
            };
        }
        let entries = vec![
            // ---- generic vocabulary -------------------------------------
            c!(
                "identifier",
                None,
                GENERIC,
                ["ID", "IDS", "IDENTIFIER", "UID"]
            ),
            c!("number", None, GENERIC, ["NUMBER", "NUM", "NO", "NR"]),
            c!("code", None, GENERIC, ["CODE", "CODES"]),
            c!("name", None, GENERIC, ["NAME", "NAMES", "LABEL"]),
            c!("title", Some("name"), GENERIC, ["TITLE"]),
            c!("first", None, GENERIC, ["FIRST", "FORENAME", "GIVEN"]),
            c!("last", None, GENERIC, ["LAST", "SURNAME", "FAMILY"]),
            c!("full", None, GENERIC, ["FULL"]),
            c!("person", None, GENERIC, ["PERSON", "PEOPLE", "INDIVIDUAL"]),
            c!("contact", Some("person"), GENERIC, ["CONTACT", "CONTACTS"]),
            c!("address", None, GENERIC, ["ADDRESS", "ADDRESSES", "ADDR"]),
            c!("street", Some("address"), GENERIC, ["STREET", "ROAD"]),
            c!("city", Some("address"), GENERIC, ["CITY", "TOWN"]),
            c!(
                "state",
                Some("address"),
                GENERIC,
                ["STATE", "PROVINCE", "REGION"]
            ),
            c!(
                "postal",
                Some("address"),
                GENERIC,
                ["POSTAL", "ZIP", "POSTCODE"]
            ),
            c!(
                "country",
                Some("address"),
                GENERIC,
                ["COUNTRY", "COUNTRIES"]
            ),
            c!(
                "territory",
                Some("country"),
                GENERIC,
                ["TERRITORY", "TERRITORIES"]
            ),
            c!(
                "location",
                Some("address"),
                GENERIC,
                ["LOCATION", "LOCATIONS", "PLACE", "LOCALITY"]
            ),
            c!("latitude", Some("location"), GENERIC, ["LATITUDE", "LAT"]),
            c!(
                "longitude",
                Some("location"),
                GENERIC,
                ["LONGITUDE", "LNG", "LON"]
            ),
            c!("altitude", Some("location"), GENERIC, ["ALTITUDE", "ALT"]),
            c!("phone", None, GENERIC, ["PHONE", "TELEPHONE", "TEL"]),
            c!("fax", Some("phone"), GENERIC, ["FAX"]),
            c!("mobile", Some("phone"), GENERIC, ["MOBILE", "CELL"]),
            c!("extension", Some("phone"), GENERIC, ["EXTENSION", "EXT"]),
            c!("email", None, GENERIC, ["EMAIL", "MAIL"]),
            c!("url", None, GENERIC, ["URL", "WEBSITE", "HOMEPAGE", "WEB"]),
            c!("image", None, GENERIC, ["IMAGE", "PHOTO", "PICTURE", "IMG"]),
            c!("date", None, GENERIC, ["DATE", "DAY"]),
            c!("datetime", Some("date"), GENERIC, ["DATETIME"]),
            c!("timestamp", Some("date"), GENERIC, ["TIMESTAMP"]),
            c!("time", None, GENERIC, ["TIME"]),
            c!("year", Some("date"), GENERIC, ["YEAR", "YR"]),
            c!("month", Some("date"), GENERIC, ["MONTH"]),
            c!("duration", Some("time"), GENERIC, ["DURATION"]),
            c!(
                "milliseconds",
                Some("time"),
                GENERIC,
                ["MILLISECONDS", "MILLIS", "MS"]
            ),
            c!(
                "birthdate",
                Some("date"),
                GENERIC,
                ["DOB", "BIRTHDATE", "BIRTHDAY", "BORN", "BIRTH"]
            ),
            c!("gender", None, GENERIC, ["GENDER", "SEX"]),
            c!("money", None, GENERIC, ["MONEY", "CURRENCY"]),
            c!("price", Some("money"), GENERIC, ["PRICE", "PRICES", "MSRP"]),
            c!("amount", Some("money"), GENERIC, ["AMOUNT", "AMOUNTS"]),
            c!("cost", Some("money"), GENERIC, ["COST", "COSTS"]),
            c!("total", Some("money"), GENERIC, ["TOTAL", "SUM"]),
            c!("tax", Some("money"), GENERIC, ["TAX", "VAT"]),
            c!("gross", Some("money"), GENERIC, ["GROSS"]),
            c!("net", Some("money"), GENERIC, ["NET"]),
            c!("discount", Some("money"), GENERIC, ["DISCOUNT", "REBATE"]),
            c!("credit", Some("money"), GENERIC, ["CREDIT"]),
            c!("limit", None, GENERIC, ["LIMIT", "MAX", "MAXIMUM"]),
            c!("quantity", None, GENERIC, ["QUANTITY", "QTY", "COUNT"]),
            c!("unit", None, GENERIC, ["UNIT", "UNITS", "EACH"]),
            c!("size", None, GENERIC, ["SIZE", "SCALE"]),
            c!("weight", None, GENERIC, ["WEIGHT"]),
            c!("color", None, GENERIC, ["COLOR", "COLOUR"]),
            c!(
                "description",
                None,
                GENERIC,
                ["DESCRIPTION", "DESCRIPTIONS", "DESC"]
            ),
            c!(
                "comment",
                Some("description"),
                GENERIC,
                ["COMMENT", "COMMENTS", "NOTE", "NOTES", "REMARK"]
            ),
            c!("status", None, GENERIC, ["STATUS"]),
            c!("type", None, GENERIC, ["TYPE", "KIND"]),
            c!(
                "category",
                Some("type"),
                GENERIC,
                ["CATEGORY", "CATEGORIES"]
            ),
            c!("line", None, GENERIC, ["LINE", "LINES"]),
            c!("job", None, GENERIC, ["JOB", "OCCUPATION"]),
            c!("report", None, GENERIC, ["REPORT", "REPORTS"]),
            c!("stop", None, GENERIC, ["STOP", "STOPS"]),
            c!("reference", None, GENERIC, ["REF", "REFERENCE"]),
            c!("required", None, GENERIC, ["REQUIRED", "REQUIRE"]),
            c!("target", None, GENERIC, ["TARGET"]),
            // ---- commerce / order-customer domain -----------------------
            c!(
                "customer",
                Some("person"),
                COMMERCE,
                [
                    "CUSTOMER",
                    "CUSTOMERS",
                    "CLIENT",
                    "CLIENTS",
                    "BUYER",
                    "PARTNER",
                    "SHOPPER"
                ]
            ),
            c!(
                "order",
                None,
                COMMERCE,
                ["ORDER", "ORDERS", "PURCHASE", "PURCHASES", "PO"]
            ),
            c!(
                "orderitem",
                Some("order"),
                COMMERCE,
                [
                    "ITEM",
                    "ITEMS",
                    "DETAIL",
                    "DETAILS",
                    "ORDERDETAILS",
                    "ORDERITEMS",
                    "LINEITEM"
                ]
            ),
            c!(
                "product",
                None,
                COMMERCE,
                ["PRODUCT", "PRODUCTS", "GOODS", "ARTICLE", "MERCHANDISE"]
            ),
            c!(
                "productline",
                Some("product"),
                COMMERCE,
                ["PRODUCTLINE", "PRODUCTLINES", "ASSORTMENT"]
            ),
            c!("brand", Some("product"), COMMERCE, ["BRAND", "MAKE"]),
            c!(
                "payment",
                Some("money"),
                COMMERCE,
                ["PAYMENT", "PAYMENTS", "PAID"]
            ),
            c!("check", Some("payment"), COMMERCE, ["CHECK", "CHEQUE"]),
            c!(
                "invoice",
                Some("payment"),
                COMMERCE,
                ["INVOICE", "INVOICES", "BILL", "BILLING"]
            ),
            c!("account", Some("money"), COMMERCE, ["ACCOUNT", "ACCOUNTS"]),
            c!(
                "shipment",
                None,
                COMMERCE,
                [
                    "SHIPMENT",
                    "SHIPMENTS",
                    "DELIVERY",
                    "DELIVERIES",
                    "SHIPPING",
                    "SHIPPED",
                    "SHIP"
                ]
            ),
            c!(
                "store",
                None,
                COMMERCE,
                ["STORE", "STORES", "SHOP", "OUTLET"]
            ),
            c!(
                "inventory",
                None,
                COMMERCE,
                ["INVENTORY", "STOCK", "ONHAND"]
            ),
            c!(
                "warehouse",
                Some("inventory"),
                COMMERCE,
                ["WAREHOUSE", "WAREHOUSES", "DEPOT"]
            ),
            c!(
                "employee",
                Some("person"),
                COMMERCE,
                ["EMPLOYEE", "EMPLOYEES", "STAFF", "WORKER"]
            ),
            c!(
                "salesrep",
                Some("employee"),
                COMMERCE,
                ["REP", "REPRESENTATIVE", "AGENT"]
            ),
            c!(
                "office",
                None,
                COMMERCE,
                ["OFFICE", "OFFICES", "BRANCH", "HEADQUARTER", "HEADQUARTERS"]
            ),
            c!("vendor", None, COMMERCE, ["VENDOR", "SUPPLIER", "SELLER"]),
            c!("sales", None, COMMERCE, ["SALES", "SALE", "SELLING"]),
            c!(
                "manager",
                Some("employee"),
                COMMERCE,
                ["MANAGER", "SUPERVISOR", "BOSS"]
            ),
            // ---- motorsport / Formula-One domain ------------------------
            c!("race", None, MOTORSPORT, ["RACE", "RACES", "RACING"]),
            c!(
                "circuit",
                None,
                MOTORSPORT,
                ["CIRCUIT", "CIRCUITS", "TRACK", "SPEEDWAY"]
            ),
            c!(
                "driver",
                Some("person"),
                MOTORSPORT,
                ["DRIVER", "DRIVERS", "PILOT"]
            ),
            c!(
                "constructor",
                None,
                MOTORSPORT,
                ["CONSTRUCTOR", "CONSTRUCTORS", "TEAM", "TEAMS"]
            ),
            c!("season", Some("year"), MOTORSPORT, ["SEASON", "SEASONS"]),
            c!("lap", None, MOTORSPORT, ["LAP", "LAPS"]),
            c!("pit", None, MOTORSPORT, ["PIT", "PITS"]),
            c!(
                "qualifying",
                None,
                MOTORSPORT,
                ["QUALIFYING", "QUALI", "QUALIFICATION"]
            ),
            c!("sprint", None, MOTORSPORT, ["SPRINT", "SPRINTS"]),
            c!("grid", None, MOTORSPORT, ["GRID"]),
            c!("points", None, MOTORSPORT, ["POINTS", "POINT", "SCORE"]),
            c!(
                "standings",
                None,
                MOTORSPORT,
                ["STANDING", "STANDINGS", "RANK", "RANKING", "LEADERBOARD"]
            ),
            c!("result", None, MOTORSPORT, ["RESULT", "RESULTS", "OUTCOME"]),
            c!("car", None, MOTORSPORT, ["CAR", "CARS", "VEHICLE"]),
            c!("engine", Some("car"), MOTORSPORT, ["ENGINE", "MOTOR"]),
            c!(
                "nationality",
                Some("country"),
                MOTORSPORT,
                ["NATIONALITY", "NATIONALITIES"]
            ),
            c!(
                "win",
                None,
                MOTORSPORT,
                ["WIN", "WINS", "WINNER", "VICTORY"]
            ),
            c!("position", None, MOTORSPORT, ["POSITION", "POS", "PLACING"]),
            c!("fastest", None, MOTORSPORT, ["FASTEST"]),
            c!("speed", None, MOTORSPORT, ["SPEED", "VELOCITY"]),
            c!("round", Some("number"), MOTORSPORT, ["ROUND", "ROUNDS"]),
            c!(
                "retired",
                None,
                MOTORSPORT,
                ["RETIRED", "RETIREMENT", "DNF"]
            ),
            // ---- SQL type & constraint words ----------------------------
            c!(
                "ty_integer",
                None,
                TYPE,
                ["INTEGER", "INT", "BIGINT", "SMALLINT"]
            ),
            c!("ty_decimal", None, TYPE, ["DECIMAL", "NUMERIC"]),
            c!("ty_float", None, TYPE, ["FLOAT", "DOUBLE", "REAL"]),
            c!("ty_varchar", None, TYPE, ["VARCHAR", "STRING"]),
            c!("ty_char", None, TYPE, ["CHAR"]),
            c!("ty_text", None, TYPE, ["TEXT", "CLOB"]),
            c!("ty_boolean", None, TYPE, ["BOOLEAN", "BOOL"]),
            c!("ty_blob", None, TYPE, ["BLOB", "BINARY"]),
            c!("kw_primary", None, TYPE, ["PRIMARY"]),
            c!("kw_foreign", None, TYPE, ["FOREIGN"]),
            c!("kw_key", None, TYPE, ["KEY", "KEYS"]),
        ];
        Self::new(entries)
    }
}

impl Default for Lexicon {
    fn default() -> Self {
        Self::default_lexicon()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_lexicon_builds() {
        let lex = Lexicon::default_lexicon();
        assert!(lex.entries().len() > 90);
    }

    #[test]
    fn synonyms_resolve_to_same_concept() {
        let lex = Lexicon::default_lexicon();
        let a = lex.resolve("CLIENT").unwrap();
        let b = lex.resolve("CUSTOMER").unwrap();
        assert_eq!(a.concept, b.concept);
        assert_eq!(a.concept, "customer");
    }

    #[test]
    fn unknown_token_misses() {
        let lex = Lexicon::default_lexicon();
        assert!(lex.resolve("FLUXCAPACITOR").is_none());
        assert!(!lex.contains_token("XYZZY"));
    }

    #[test]
    fn hypernyms_chain() {
        let lex = Lexicon::default_lexicon();
        let city = lex.resolve("CITY").unwrap();
        assert_eq!(city.parent.as_deref(), Some("address"));
        let anc = lex.ancestors("territory");
        let names: Vec<&str> = anc.iter().map(|e| e.concept.as_str()).collect();
        assert_eq!(names, vec!["country", "address"]);
    }

    #[test]
    fn domains_assigned() {
        let lex = Lexicon::default_lexicon();
        assert_eq!(lex.resolve("CIRCUIT").unwrap().domain, domains::MOTORSPORT);
        assert_eq!(lex.resolve("SHIPMENT").unwrap().domain, domains::COMMERCE);
        assert_eq!(lex.resolve("ADDRESS").unwrap().domain, domains::GENERIC);
    }

    #[test]
    fn person_bridges_domains() {
        // DRIVER, CUSTOMER, and EMPLOYEE all descend from `person` — the
        // hard-negative structure the paper calls out ("DRIVER could be
        // regarded as a CLIENT or EMPLOYEE").
        let lex = Lexicon::default_lexicon();
        for tok in ["DRIVER", "CUSTOMER", "EMPLOYEE"] {
            assert_eq!(
                lex.resolve(tok).unwrap().parent.as_deref(),
                Some("person"),
                "{tok}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "claimed by both")]
    fn duplicate_token_panics() {
        Lexicon::new(vec![
            ConceptEntry::new("a", None, "G", &["X"]),
            ConceptEntry::new("b", None, "G", &["X"]),
        ]);
    }

    #[test]
    #[should_panic(expected = "unknown parent")]
    fn unknown_parent_panics() {
        Lexicon::new(vec![ConceptEntry::new("a", Some("ghost"), "G", &["A"])]);
    }

    #[test]
    fn concept_lookup_by_name() {
        let lex = Lexicon::default_lexicon();
        assert!(lex.concept("customer").is_some());
        assert!(lex.concept("no-such-concept").is_none());
    }

    #[test]
    fn parse_entries_roundtrip() {
        let text = "\n# custom words\nwarranty | - | COMMERCE | WARRANTY, GUARANTEE\ndestination | address | GENERIC | DESTINATION\n";
        let entries = Lexicon::parse_entries(text).unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].concept, "warranty");
        assert_eq!(entries[0].parent, None);
        assert_eq!(entries[1].parent.as_deref(), Some("address"));
        let lex = Lexicon::default_with_extensions(text).unwrap();
        assert_eq!(lex.resolve("GUARANTEE").unwrap().concept, "warranty");
        assert_eq!(lex.ancestors("destination")[0].concept, "address");
    }

    #[test]
    fn parse_entries_rejects_malformed_lines() {
        assert!(Lexicon::parse_entries("just-a-word")
            .unwrap_err()
            .contains("line 1"));
        assert!(Lexicon::parse_entries("a | - | G |")
            .unwrap_err()
            .contains("no synonyms"));
        assert!(Lexicon::parse_entries(" | - | G | X")
            .unwrap_err()
            .contains("empty concept"));
    }

    #[test]
    fn parse_entries_uppercases_synonyms_and_domains() {
        let entries = Lexicon::parse_entries("c | - | generic | abc, Def").unwrap();
        assert_eq!(entries[0].domain, "GENERIC");
        assert_eq!(
            entries[0].synonyms,
            vec!["ABC".to_string(), "DEF".to_string()]
        );
    }

    #[test]
    fn extensions_reject_collisions_gracefully() {
        // Redefining a default token must be an Err, not a panic — the
        // scope CLI feeds user files through this path.
        let err = Lexicon::default_with_extensions("mycity | - | GENERIC | CITY").unwrap_err();
        assert!(err.contains("already claimed"), "{err}");
        let err = Lexicon::default_with_extensions("city | - | GENERIC | METROPOLIS").unwrap_err();
        assert!(err.contains("redefines concept"), "{err}");
        let err = Lexicon::default_with_extensions("x | ghost | GENERIC | XX").unwrap_err();
        assert!(err.contains("unknown parent"), "{err}");
    }
}
