//! Identifier tokenization.
//!
//! Schema identifiers arrive in many casings: `ORDER_DATETIME`,
//! `productLine`, `customerNumber`, `ORDERDATE`, `order-date`. The
//! tokenizer splits on non-alphanumerics, camelCase boundaries, and
//! letter/digit boundaries, and uppercases every token so the lexicon is
//! case-insensitive.

/// Splits a serialized metadata string into canonical uppercase tokens.
///
/// ```
/// use cs_embed::tokenize;
/// assert_eq!(tokenize("ORDER_DATETIME"), vec!["ORDER", "DATETIME"]);
/// assert_eq!(tokenize("productLine"), vec!["PRODUCT", "LINE"]);
/// assert_eq!(tokenize("CLIENT [CID, NAME]"), vec!["CLIENT", "CID", "NAME"]);
/// assert_eq!(tokenize("addr2line10"), vec!["ADDR", "2", "LINE", "10"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut prev: Option<char> = None;

    let flush = |current: &mut String, tokens: &mut Vec<String>| {
        if !current.is_empty() {
            tokens.push(std::mem::take(current));
        }
    };

    let chars: Vec<char> = text.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if !c.is_alphanumeric() {
            flush(&mut current, &mut tokens);
            prev = None;
            continue;
        }
        if let Some(p) = prev {
            let camel = p.is_lowercase() && c.is_uppercase();
            // `HTMLParser` → HTML | Parser: uppercase run followed by
            // uppercase+lowercase.
            let acronym_end = p.is_uppercase()
                && c.is_uppercase()
                && chars.get(i + 1).is_some_and(|n| n.is_lowercase());
            let digit_boundary = p.is_ascii_digit() != c.is_ascii_digit();
            if camel || acronym_end || digit_boundary {
                flush(&mut current, &mut tokens);
            }
        }
        current.extend(c.to_uppercase());
        prev = Some(c);
    }
    flush(&mut current, &mut tokens);
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snake_case() {
        assert_eq!(tokenize("FIRST_NAME"), vec!["FIRST", "NAME"]);
        assert_eq!(tokenize("order_item_id"), vec!["ORDER", "ITEM", "ID"]);
    }

    #[test]
    fn camel_case() {
        assert_eq!(tokenize("customerNumber"), vec!["CUSTOMER", "NUMBER"]);
        assert_eq!(tokenize("MSRP"), vec!["MSRP"]);
        assert_eq!(tokenize("htmlDescription"), vec!["HTML", "DESCRIPTION"]);
    }

    #[test]
    fn acronym_followed_by_word() {
        assert_eq!(tokenize("HTMLParser"), vec!["HTML", "PARSER"]);
        assert_eq!(tokenize("QRCode"), vec!["QR", "CODE"]);
    }

    #[test]
    fn digits_split() {
        assert_eq!(tokenize("ADDRESS1"), vec!["ADDRESS", "1"]);
        assert_eq!(tokenize("S3BUCKET"), vec!["S", "3", "BUCKET"]);
    }

    #[test]
    fn punctuation_and_brackets() {
        assert_eq!(
            tokenize("CLIENT [CID, NAME, ADDRESS]"),
            vec!["CLIENT", "CID", "NAME", "ADDRESS"]
        );
        assert_eq!(tokenize("a.b-c/d"), vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn joined_words_stay_joined() {
        // No dictionary segmentation: ORDERDATE is one token — this is what
        // creates the paper's ORDERDATE vs ORDER_DATETIME nuance.
        assert_eq!(tokenize("ORDERDATE"), vec!["ORDERDATE"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("[]() ,,").is_empty());
    }

    #[test]
    fn unicode_is_uppercased() {
        assert_eq!(tokenize("straße"), vec!["STRASSE"]);
    }
}
