//! Local Outlier Factor (Breunig et al., SIGMOD 2000).
//!
//! Density-based detection: a point whose local reachability density is low
//! relative to its neighbors' densities gets a LOF well above 1. The paper
//! uses sklearn's `LocalOutlierFactor` with the default `n = 20` neighbors;
//! this is a faithful re-implementation (including the tie-inclusive
//! k-neighborhood and the duplicate-point density cap).

use crate::OutlierDetector;
use cs_linalg::vecops::{euclidean, total_cmp_f64};
use cs_linalg::Matrix;

/// LOF detector with a configurable neighbor count.
#[derive(Debug, Clone, Copy)]
pub struct LofDetector {
    n_neighbors: usize,
}

impl Default for LofDetector {
    /// sklearn's (and the paper's) default: 20 neighbors.
    fn default() -> Self {
        Self { n_neighbors: 20 }
    }
}

impl LofDetector {
    /// Creates a detector with `n_neighbors ≥ 1`.
    pub fn new(n_neighbors: usize) -> Self {
        assert!(n_neighbors >= 1, "LOF needs at least one neighbor");
        Self { n_neighbors }
    }

    /// The configured neighbor count.
    pub fn n_neighbors(&self) -> usize {
        self.n_neighbors
    }

    /// Computes LOF scores for every row of `data`.
    pub fn lof_scores(&self, data: &Matrix) -> Vec<f64> {
        let n = data.rows();
        if n <= 1 {
            return vec![1.0; n];
        }
        // Effective k: cannot exceed n − 1 other points.
        let k = self.n_neighbors.min(n - 1);

        // Pairwise distances (symmetric, O(n²·d)).
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = euclidean(data.row(i), data.row(j));
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }

        // k-distance and tie-inclusive k-neighborhood per point.
        let mut k_distance = vec![0.0f64; n];
        let mut neighbors: Vec<Vec<usize>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut order: Vec<usize> = (0..n).filter(|&j| j != i).collect();
            order.sort_by(|&a, &b| total_cmp_f64(&dist[i][a], &dist[i][b]));
            let kd = dist[i][order[k - 1]];
            k_distance[i] = kd;
            let nbrs: Vec<usize> = order.into_iter().filter(|&j| dist[i][j] <= kd).collect();
            neighbors.push(nbrs);
        }

        // Local reachability density.
        let mut lrd = vec![0.0f64; n];
        for i in 0..n {
            let sum: f64 = neighbors[i]
                .iter()
                .map(|&j| dist[i][j].max(k_distance[j])) // reach-dist_k(i, j)
                .sum();
            let mean = sum / neighbors[i].len() as f64;
            // Duplicate-heavy neighborhoods can have zero mean reach-dist;
            // cap density like sklearn (1e10).
            lrd[i] = if mean > 0.0 { 1.0 / mean } else { 1e10 };
        }

        // LOF = mean neighbor density / own density.
        (0..n)
            .map(|i| {
                let mean_nbr: f64 =
                    neighbors[i].iter().map(|&j| lrd[j]).sum::<f64>() / neighbors[i].len() as f64;
                mean_nbr / lrd[i]
            })
            .collect()
    }
}

impl OutlierDetector for LofDetector {
    fn name(&self) -> String {
        format!("LOF (n={})", self.n_neighbors)
    }

    fn score(&self, data: &Matrix) -> Vec<f64> {
        self.lof_scores(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    #[test]
    fn uniform_cluster_scores_near_one() {
        let mut rng = Xoshiro256::seed_from(1);
        let data = Matrix::from_fn(50, 4, |_, _| rng.next_gaussian());
        let scores = LofDetector::new(10).lof_scores(&data);
        // Gaussian cloud: most points around 1, none wildly high.
        let mean: f64 = scores.iter().sum::<f64>() / scores.len() as f64;
        assert!((mean - 1.0).abs() < 0.3, "mean {mean}");
    }

    #[test]
    fn isolated_point_gets_high_lof() {
        let mut rng = Xoshiro256::seed_from(2);
        let mut data = Matrix::from_fn(40, 3, |_, _| rng.next_gaussian() * 0.2);
        for j in 0..3 {
            data[(39, j)] = 5.0;
        }
        let scores = LofDetector::new(5).lof_scores(&data);
        let max_inlier = scores[..39].iter().cloned().fold(0.0, f64::max);
        assert!(
            scores[39] > max_inlier * 2.0,
            "outlier {} inliers ≤ {max_inlier}",
            scores[39]
        );
    }

    #[test]
    fn two_density_clusters() {
        // A point at the edge of a sparse cluster should not dominate a
        // clear outlier; classic LOF sanity setup.
        let mut rows = Vec::new();
        let mut rng = Xoshiro256::seed_from(3);
        for _ in 0..20 {
            rows.push(vec![rng.next_gaussian() * 0.05, rng.next_gaussian() * 0.05]);
        }
        for _ in 0..20 {
            rows.push(vec![5.0 + rng.next_gaussian(), 5.0 + rng.next_gaussian()]);
        }
        rows.push(vec![2.5, 2.5]); // genuinely isolated between clusters
        let data = Matrix::from_rows(&rows);
        let scores = LofDetector::new(5).lof_scores(&data);
        let (argmax, _) = cs_linalg::vecops::argmax(&scores).unwrap();
        assert_eq!(argmax, 40);
    }

    #[test]
    fn duplicates_do_not_blow_up() {
        let data = Matrix::from_rows(&[
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![9.0, 9.0],
        ]);
        let scores = LofDetector::new(2).lof_scores(&data);
        assert!(scores.iter().all(|s| s.is_finite()), "{scores:?}");
        assert!(scores[3] > scores[0]);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(
            LofDetector::new(5).lof_scores(&Matrix::zeros(0, 3)),
            Vec::<f64>::new()
        );
        assert_eq!(
            LofDetector::new(5).lof_scores(&Matrix::zeros(1, 3)),
            vec![1.0]
        );
        // k clamps to n − 1.
        let scores =
            LofDetector::new(20).lof_scores(&Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]));
        assert_eq!(scores.len(), 3);
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    #[should_panic(expected = "at least one neighbor")]
    fn zero_neighbors_panics() {
        LofDetector::new(0);
    }

    #[test]
    fn default_matches_sklearn_default() {
        assert_eq!(LofDetector::default().n_neighbors(), 20);
        assert_eq!(LofDetector::default().name(), "LOF (n=20)");
    }
}
