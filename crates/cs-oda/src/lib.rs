//! # cs-oda
//!
//! Outlier detection algorithms (ODAs) — the engine behind the *global
//! scoping* baseline (Section 2.4 of the paper). Each detector consumes a
//! signature matrix (one row per schema element) and emits one outlier
//! score per row, **higher = more anomalous = more likely unlinkable**.
//!
//! Implemented detectors, matching the paper's baseline roster:
//!
//! - [`ZScoreDetector`] — mean absolute standardized deviation,
//! - [`LofDetector`] — Local Outlier Factor (Breunig et al., 2000),
//! - [`PcaDetector`] — PCA reconstruction error at a given explained
//!   variance,
//! - [`AutoencoderDetector`] — ensemble-summed reconstruction error of the
//!   dense `…|100|10|100|…` autoencoder from `cs-nn`.

pub mod extra;
pub mod lof;

use cs_linalg::pca::ExplainedVariance;
use cs_linalg::stats::row_zscore_magnitude;
use cs_linalg::{Matrix, Pca, PcaConfig, PcaSolver};
use cs_nn::{ensemble_scores, TrainConfig};

pub use extra::{KnnDistanceDetector, MahalanobisDetector};
pub use lof::LofDetector;

/// A scoring outlier detector over row-signature matrices.
pub trait OutlierDetector {
    /// Short display name (used in result tables, e.g. `PCA (v=0.5)`).
    fn name(&self) -> String;

    /// One outlier score per row of `data`; higher means more outlying.
    ///
    /// # Panics
    /// Detectors may panic on empty input; callers guard at the pipeline
    /// boundary (`cs-core` rejects empty schemas with a typed error).
    fn score(&self, data: &Matrix) -> Vec<f64>;
}

/// Z-score detector: a row's mean absolute standardized deviation from the
/// column means (the SciPy `zscore` baseline, aggregated per element).
#[derive(Debug, Clone, Copy, Default)]
pub struct ZScoreDetector;

impl OutlierDetector for ZScoreDetector {
    fn name(&self) -> String {
        "Z-Score".into()
    }

    fn score(&self, data: &Matrix) -> Vec<f64> {
        row_zscore_magnitude(data)
    }
}

/// PCA reconstruction-error detector at a fixed explained variance.
#[derive(Debug, Clone, Copy)]
pub struct PcaDetector {
    v: ExplainedVariance,
    solver: PcaSolver,
}

impl PcaDetector {
    /// Creates a detector keeping components per explained variance `v`,
    /// fitting under [`PcaSolver::Auto`] (on unified global-scoping
    /// matrices — hundreds of rows — `Auto` picks the truncated solver).
    pub fn new(v: ExplainedVariance) -> Self {
        Self {
            v,
            solver: PcaSolver::Auto,
        }
    }

    /// Convenience constructor from a raw `v ∈ (0, 1]`.
    ///
    /// # Panics
    /// If `v` is out of range.
    pub fn with_variance(v: f64) -> Self {
        Self::new(ExplainedVariance::new(v).expect("explained variance must lie in (0, 1]"))
    }

    /// Pins the PCA eigensolver — `GlobalScoper` inherits the choice
    /// through the detector it wraps.
    pub fn with_solver(mut self, solver: PcaSolver) -> Self {
        self.solver = solver;
        self
    }

    /// The configured explained variance.
    pub fn variance(&self) -> f64 {
        self.v.get()
    }

    /// The configured eigensolver.
    pub fn solver(&self) -> PcaSolver {
        self.solver
    }
}

impl OutlierDetector for PcaDetector {
    fn name(&self) -> String {
        format!("PCA (v={})", self.v.get())
    }

    fn score(&self, data: &Matrix) -> Vec<f64> {
        let config = PcaConfig::new()
            .with_variance(self.v)
            .with_solver(self.solver);
        let pca =
            Pca::fit_with(data, config).expect("signature matrix must be non-empty and finite");
        pca.reconstruction_errors(data)
    }
}

/// Ensemble autoencoder detector (the paper: 100 runs × 50 epochs, summed).
#[derive(Debug, Clone)]
pub struct AutoencoderDetector {
    /// Training hyper-parameters per run.
    pub config: TrainConfig,
    /// Number of independently initialized runs.
    pub runs: usize,
}

impl AutoencoderDetector {
    /// The paper's configuration — expensive; prefer [`Self::fast`] in tests.
    pub fn paper() -> Self {
        Self {
            config: TrainConfig::default(),
            runs: 100,
        }
    }

    /// A cheap configuration for tests and smoke runs.
    pub fn fast(runs: usize, epochs: usize) -> Self {
        Self {
            config: TrainConfig {
                epochs,
                ..TrainConfig::default()
            },
            runs,
        }
    }
}

impl OutlierDetector for AutoencoderDetector {
    fn name(&self) -> String {
        format!("Autoencoder (runs={})", self.runs)
    }

    fn score(&self, data: &Matrix) -> Vec<f64> {
        ensemble_scores(data, &self.config, self.runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    /// A tight cluster plus one far outlier at the last row.
    fn cluster_with_outlier(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut m = Matrix::from_fn(n, dim, |_, _| rng.next_gaussian() * 0.1);
        for j in 0..dim {
            m[(n - 1, j)] = 4.0;
        }
        m
    }

    fn outlier_is_top_scored(scores: &[f64]) -> bool {
        let last = scores.len() - 1;
        scores[..last].iter().all(|&s| s < scores[last])
    }

    #[test]
    fn zscore_detects_far_point() {
        let data = cluster_with_outlier(30, 8, 1);
        let scores = ZScoreDetector.score(&data);
        assert_eq!(scores.len(), 30);
        assert!(outlier_is_top_scored(&scores), "{scores:?}");
    }

    #[test]
    fn pca_detects_off_subspace_point() {
        // Points on a 2-d subspace; outlier off it.
        let mut rng = Xoshiro256::seed_from(2);
        let b1: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let b2: Vec<f64> = (0..10).map(|_| rng.next_gaussian()).collect();
        let mut data = Matrix::from_fn(40, 10, |i, j| {
            let a = (i as f64 * 0.37).sin();
            let b = (i as f64 * 0.53).cos();
            a * b1[j] + b * b2[j]
        });
        for j in 0..10 {
            data[(39, j)] = rng.next_gaussian() * 3.0;
        }
        let det = PcaDetector::with_variance(0.9);
        let scores = det.score(&data);
        assert!(outlier_is_top_scored(&scores));
        assert_eq!(det.name(), "PCA (v=0.9)");
    }

    #[test]
    fn autoencoder_detects_far_point() {
        let data = cluster_with_outlier(25, 6, 3);
        let det = AutoencoderDetector::fast(2, 60);
        let scores = det.score(&data);
        assert!(outlier_is_top_scored(&scores), "{scores:?}");
    }

    #[test]
    #[should_panic(expected = "explained variance")]
    fn invalid_variance_panics() {
        PcaDetector::with_variance(0.0);
    }

    #[test]
    fn detector_names() {
        assert_eq!(ZScoreDetector.name(), "Z-Score");
        assert!(AutoencoderDetector::fast(3, 1).name().contains("runs=3"));
    }
}
