//! Additional outlier detectors beyond the paper's baseline roster.
//!
//! Both are standard techniques from the outlier-analysis literature the
//! paper builds on (Aggarwal, *Outlier Analysis*): distance-based kNN
//! scoring and the Mahalanobis distance in the PCA-whitened space. They
//! extend the global-scoping baseline family for robustness studies.

use crate::OutlierDetector;
use cs_linalg::vecops::{euclidean, total_cmp_f64};
use cs_linalg::{Matrix, Pca};

/// kNN-distance detector: the outlier score of a point is the mean
/// distance to its `k` nearest neighbors (the "weighted-kNN" variant,
/// smoother than the max-distance form).
#[derive(Debug, Clone, Copy)]
pub struct KnnDistanceDetector {
    k: usize,
}

impl KnnDistanceDetector {
    /// Creates a detector with `k ≥ 1` neighbors.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "kNN scoring needs at least one neighbor");
        Self { k }
    }

    /// The configured neighbor count.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl Default for KnnDistanceDetector {
    fn default() -> Self {
        Self::new(5)
    }
}

impl OutlierDetector for KnnDistanceDetector {
    fn name(&self) -> String {
        format!("kNN-distance (k={})", self.k)
    }

    fn score(&self, data: &Matrix) -> Vec<f64> {
        let n = data.rows();
        if n <= 1 {
            return vec![0.0; n];
        }
        let k = self.k.min(n - 1);
        (0..n)
            .map(|i| {
                let mut dists: Vec<f64> = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| euclidean(data.row(i), data.row(j)))
                    .collect();
                dists.sort_by(total_cmp_f64);
                dists[..k].iter().sum::<f64>() / k as f64
            })
            .collect()
    }
}

/// Mahalanobis-distance detector in the PCA-whitened space: distances are
/// measured per principal axis in units of that axis's standard
/// deviation, with a variance floor for near-degenerate directions.
#[derive(Debug, Clone, Copy)]
pub struct MahalanobisDetector {
    /// Relative variance floor (fraction of the largest eigenvalue) that
    /// keeps near-null directions from exploding the distance.
    variance_floor: f64,
}

impl MahalanobisDetector {
    /// Creates a detector with the given relative variance floor.
    pub fn new(variance_floor: f64) -> Self {
        assert!(
            variance_floor > 0.0 && variance_floor <= 1.0,
            "variance floor must lie in (0, 1]"
        );
        Self { variance_floor }
    }
}

impl Default for MahalanobisDetector {
    fn default() -> Self {
        Self::new(1e-6)
    }
}

impl OutlierDetector for MahalanobisDetector {
    fn name(&self) -> String {
        "Mahalanobis".into()
    }

    fn score(&self, data: &Matrix) -> Vec<f64> {
        let n = data.rows();
        if n <= 1 {
            return vec![0.0; n];
        }
        let pca = Pca::fit_full(data).expect("non-empty, finite data");
        let z = pca.encode(data);
        // Per-axis variance = σ_i² / n; floor relative to the top axis.
        let variances: Vec<f64> = pca
            .singular_values()
            .iter()
            .take(z.cols())
            .map(|s| s * s / n as f64)
            .collect();
        let top = variances.first().copied().unwrap_or(0.0);
        if top <= 0.0 {
            return vec![0.0; n];
        }
        let floor = top * self.variance_floor;
        (0..n)
            .map(|i| {
                z.row(i)
                    .iter()
                    .zip(variances.iter())
                    .map(|(&zi, &var)| zi * zi / var.max(floor))
                    .sum::<f64>()
                    .sqrt()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cs_linalg::Xoshiro256;

    fn cluster_with_outlier(n: usize, dim: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut m = Matrix::from_fn(n, dim, |_, _| rng.next_gaussian() * 0.1);
        for j in 0..dim {
            m[(n - 1, j)] = 4.0;
        }
        m
    }

    #[test]
    fn knn_detects_far_point() {
        let data = cluster_with_outlier(30, 6, 1);
        let scores = KnnDistanceDetector::default().score(&data);
        let max_inlier = scores[..29].iter().cloned().fold(0.0, f64::max);
        assert!(scores[29] > max_inlier * 3.0);
    }

    #[test]
    fn knn_handles_tiny_inputs() {
        assert_eq!(
            KnnDistanceDetector::new(3).score(&Matrix::zeros(1, 4)),
            vec![0.0]
        );
        assert!(KnnDistanceDetector::new(3)
            .score(&Matrix::zeros(0, 4))
            .is_empty());
        // k clamps.
        let scores =
            KnnDistanceDetector::new(10).score(&Matrix::from_rows(&[vec![0.0], vec![1.0]]));
        assert_eq!(scores, vec![1.0, 1.0]);
    }

    #[test]
    fn mahalanobis_detects_off_axis_point() {
        // Elongated cloud along one axis; the outlier deviates on the thin
        // axis by an amount that would look small in Euclidean terms.
        let mut rng = Xoshiro256::seed_from(2);
        let mut rows: Vec<Vec<f64>> = (0..60)
            .map(|_| vec![rng.next_gaussian() * 10.0, rng.next_gaussian() * 0.1])
            .collect();
        rows.push(vec![0.0, 1.0]); // tiny Euclidean, huge Mahalanobis
        let data = Matrix::from_rows(&rows);
        let scores = MahalanobisDetector::default().score(&data);
        let max_inlier = scores[..60].iter().cloned().fold(0.0, f64::max);
        assert!(
            scores[60] > max_inlier,
            "off-axis point {} vs inliers ≤ {max_inlier}",
            scores[60]
        );
    }

    #[test]
    fn mahalanobis_degenerate_inputs() {
        assert_eq!(
            MahalanobisDetector::default().score(&Matrix::zeros(1, 3)),
            vec![0.0]
        );
        // Constant data: zero variance everywhere → all scores zero.
        let constant = Matrix::from_fn(5, 3, |_, _| 2.0);
        assert_eq!(
            MahalanobisDetector::default().score(&constant),
            vec![0.0; 5]
        );
    }

    #[test]
    fn names() {
        assert_eq!(KnnDistanceDetector::default().name(), "kNN-distance (k=5)");
        assert_eq!(MahalanobisDetector::default().name(), "Mahalanobis");
    }

    #[test]
    #[should_panic(expected = "at least one neighbor")]
    fn zero_k_panics() {
        KnnDistanceDetector::new(0);
    }

    #[test]
    #[should_panic(expected = "variance floor")]
    fn bad_floor_panics() {
        MahalanobisDetector::new(0.0);
    }
}
