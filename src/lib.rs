//! # collaborative-scoping
//!
//! Rust reproduction of *Collaborative Scoping: Self-Supervised Linkability
//! Assessment for Schema Matching* (EDBT 2026).
//!
//! This façade crate re-exports the entire workspace so downstream users can
//! depend on a single crate:
//!
//! - [`linalg`] — dense linear algebra (Matrix, SVD, PCA, seeded PRNG)
//! - [`schema`] — relational schema model, DDL parser, serialization, linkages
//! - [`embed`] — deterministic semantic signature encoder + string similarity
//! - [`nn`] — from-scratch dense autoencoder (baseline ODA)
//! - [`oda`] — outlier detection algorithms (Z-score, LOF, PCA, autoencoder)
//! - [`core`] — scoping + collaborative scoping (the paper's contribution)
//! - [`matching`] — SIM / CLUSTER / LSH matchers for the ablation study
//! - [`metrics`] — ROC / PR / AUC / PQ / PC / F1 / RR evaluation metrics
//! - [`datasets`] — the OC3 and OC3-FO evaluation datasets
//!
//! ## Quickstart
//!
//! ```
//! use collaborative_scoping::prelude::*;
//!
//! // Load the paper's domain-specific dataset: three order-customer schemas.
//! let dataset = collaborative_scoping::datasets::oc3();
//! // Encode every table/attribute into a 768-d signature (phase I).
//! let encoder = SignatureEncoder::default();
//! let signatures = encode_catalog(&encoder, &dataset.catalog);
//! // Train one local encoder-decoder per schema (phase II) and assess
//! // linkability collaboratively (phase III) at explained variance 0.8.
//! let scoper = CollaborativeScoper::new(0.8);
//! let run = scoper.run(&signatures).unwrap();
//! let streamlined = run.outcome.streamlined(&dataset.catalog);
//! assert!(streamlined.element_count() <= dataset.catalog.element_count());
//! ```

pub use cs_core as core;
pub use cs_datasets as datasets;
pub use cs_embed as embed;
pub use cs_linalg as linalg;
pub use cs_match as matching;
pub use cs_metrics as metrics;
pub use cs_nn as nn;
pub use cs_oda as oda;
pub use cs_schema as schema;

/// Convenience re-exports of the most commonly used types — everything the
/// quickstart pipeline touches, one `use collaborative_scoping::prelude::*;`
/// away.
pub mod prelude {
    pub use cs_core::exchange::{from_bytes, from_json, to_bytes, to_json};
    pub use cs_core::{
        encode_catalog, encode_catalog_with, CollaborativeScoper, CollaborativeScoperBuilder,
        CollaborativeSweep, CombinationRule, ExchangeError, GlobalScoper, LocalModel,
        ModelEnvelope, NeuralCollaborativeScoper, SchemaSignatures, Scoper, ScopingError,
        ScopingOutcome, SignatureCatalog, SourceToTargetScoper, SweepGrid,
    };
    pub use cs_datasets::{oc3, oc3_fo, Dataset};
    pub use cs_embed::{EncoderConfig, SignatureEncoder};
    pub use cs_linalg::{
        total_cmp_f64, ExplainedVariance, Matrix, Pca, PcaConfig, PcaRehydrateError, PcaSolver,
        PcaTarget,
    };
    pub use cs_match::{
        dedup_pairs, AnnConfig, AnnMatcher, AnnSimMatcher, ClusterMatcher, ElementSet,
        HybridMatcher, LshMatcher, Matcher, NamedSet, SimMatcher,
    };
    pub use cs_metrics::{match_quality, BinaryConfusion, MatchQuality, SweepCurve};
    pub use cs_oda::{OutlierDetector, PcaDetector, ZScoreDetector};
    pub use cs_schema::{
        parse_schema, Attribute, Catalog, ElementId, LinkageSet, Schema, SerializeOptions, Table,
    };
}
